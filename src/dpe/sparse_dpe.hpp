// Sparse-DPE (paper §IV-C, Algorithm 3).
//
// Distance-preserving encoding for sparse media (text): a PRF applied to
// each keyword, with threshold t = 0. The only distance information
// revealed is equality — two encodings match iff the keywords are equal;
// keywords one character apart yield unrelated encodings.
#pragma once

#include <string_view>

#include "crypto/secret.hpp"
#include "util/bytes.hpp"

namespace mie::dpe {

/// Secret key of a Sparse-DPE instance (a PRF key).
struct SparseDpeKey {
    crypto::SecretBytes key;

    /// Deliberate duplication (the key is move-only secret storage).
    SparseDpeKey clone() const { return SparseDpeKey{key.clone()}; }

    Bytes serialize() const {
        return Bytes(key.data(), key.data() + key.size());
    }
    static SparseDpeKey deserialize(BytesView data) {
        return SparseDpeKey{crypto::SecretBytes(data)};
    }
};

class SparseDpe {
public:
    /// Encoded token size in bytes (HMAC-SHA1 output, as in the paper's
    /// prototype).
    static constexpr std::size_t kTokenSize = 20;

    /// KEYGEN(k): derives a PRF key from `entropy`; threshold t is 0.
    static SparseDpeKey keygen(BytesView entropy);

    static constexpr double threshold() { return 0.0; }

    explicit SparseDpe(const SparseDpeKey& key);

    /// ENCODE(K, p): PRF of a single keyword.
    Bytes encode(std::string_view keyword) const;

    /// DISTANCE(e1, e2): 0 if equal, 1 otherwise (a constant value distinct
    /// from every preserved distance, per Definition 1 with t = 0).
    static double distance(BytesView e1, BytesView e2);

private:
    SparseDpeKey key_;
};

}  // namespace mie::dpe
