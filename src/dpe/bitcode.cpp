#include "dpe/bitcode.hpp"

#include <bit>
#include <stdexcept>

namespace mie::dpe {

BitCode::BitCode(std::size_t bits)
    : words_((bits + 63) / 64, 0), bits_(bits) {}

std::size_t BitCode::hamming_distance(const BitCode& other) const {
    if (bits_ != other.bits_) {
        throw std::invalid_argument("BitCode: size mismatch");
    }
    std::size_t distance = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
        distance += static_cast<std::size_t>(
            std::popcount(words_[i] ^ other.words_[i]));
    }
    return distance;
}

double BitCode::normalized_hamming(const BitCode& other) const {
    if (bits_ == 0) return 0.0;
    return static_cast<double>(hamming_distance(other)) /
           static_cast<double>(bits_);
}

Bytes BitCode::serialize() const {
    Bytes out;
    out.reserve(8 + words_.size() * 8);
    append_le<std::uint64_t>(out, bits_);
    for (std::uint64_t w : words_) append_le<std::uint64_t>(out, w);
    return out;
}

BitCode BitCode::deserialize(BytesView data) {
    const auto bits = read_le<std::uint64_t>(data, 0);
    // Validate against the buffer BEFORE allocating: a hostile length
    // field must not trigger a huge allocation.
    const std::uint64_t words = (bits + 63) / 64;
    if (bits > (static_cast<std::uint64_t>(data.size()) - 8) * 8 ||
        data.size() < 8 + words * 8) {
        throw std::out_of_range("BitCode: truncated buffer");
    }
    BitCode code(static_cast<std::size_t>(bits));
    for (std::size_t i = 0; i < code.words_.size(); ++i) {
        code.words_[i] = read_le<std::uint64_t>(data, 8 + 8 * i);
    }
    return code;
}

}  // namespace mie::dpe
