#include "dpe/sparse_dpe.hpp"

#include <stdexcept>

#include "crypto/kdf.hpp"
#include "crypto/prf.hpp"

namespace mie::dpe {

SparseDpeKey SparseDpe::keygen(BytesView entropy) {
    return SparseDpeKey{crypto::derive_key(entropy, "sparse-dpe-key")};
}

SparseDpe::SparseDpe(const SparseDpeKey& key) : key_(key.clone()) {
    if (key_.key.empty()) {
        throw std::invalid_argument("SparseDpe: empty key");
    }
}

Bytes SparseDpe::encode(std::string_view keyword) const {
    return crypto::prf_sha1(key_.key, to_bytes(keyword));
}

double SparseDpe::distance(BytesView e1, BytesView e2) {
    return ct_equal(e1, e2) ? 0.0 : 1.0;
}

}  // namespace mie::dpe
