// Dense-DPE (paper §IV-B, Algorithm 2).
//
// Distance-preserving encoding for dense, high-dimensional feature vectors
// (images, audio, video). Extends the universal scalar quantization scheme
// of Boufounos & Rane:
//
//     e(x) = Q( Δ^{-1} (A x + w) )
//
// where A is an M x N matrix of iid Gaussians, w is a dither uniform in
// [0, Δ]^M, and Q maps [2v, 2v+1) -> 1 and [2v+1, 2v+2) -> 0 — i.e. the
// parity of the floor. Normalized Hamming distance between encodings tracks
// the Euclidean distance between plaintexts up to a tunable threshold t and
// conveys (almost) no information beyond it.
//
// Following the paper's key-size fix, A and w are expanded from a short
// PRG seed (AES-CTR DRBG), so the shared repository key is O(1) in (N, M).
// This object caches the expansion; the serialized key is just
// {seed, N, M, Δ}.
#pragma once

#include <span>
#include <vector>

#include "crypto/secret.hpp"
#include "dpe/bitcode.hpp"
#include "features/feature.hpp"
#include "util/bytes.hpp"

namespace mie::dpe {

/// Secret key + public parameters of a Dense-DPE instance.
struct DenseDpeKey {
    crypto::SecretBytes seed;     ///< PRG seed; the actual secret
    std::size_t input_dims = 0;   ///< N
    std::size_t output_bits = 0;  ///< M
    double delta = 1.0;           ///< Δ, controls the threshold t

    /// Deliberate duplication (the seed is move-only secret storage).
    DenseDpeKey clone() const {
        return DenseDpeKey{seed.clone(), input_dims, output_bits, delta};
    }

    Bytes serialize() const;
    static DenseDpeKey deserialize(BytesView data);
};

class DenseDpe {
public:
    /// KEYGEN(N, M, Δ): draws a fresh seed from `entropy` and derives the
    /// distance threshold t = Func(Δ).
    static DenseDpeKey keygen(BytesView entropy, std::size_t input_dims,
                              std::size_t output_bits, double delta);

    /// Threshold t below which plaintext Euclidean distances are preserved
    /// (Definition 1). For the universal quantizer the encoded distance
    /// saturates at 1/2 when d >= Δ·sqrt(π/2), so t is that saturation point
    /// expressed in the normalized-Hamming range, i.e. t = 0.5.
    static double threshold(const DenseDpeKey& key);

    /// Instantiates the encoder, expanding A and w from the key's seed.
    explicit DenseDpe(const DenseDpeKey& key);

    /// ENCODE(K, p): deterministic encoding of an N-dim feature vector.
    BitCode encode(const features::FeatureVec& plaintext) const;

    /// Encodes a batch of vectors, fanning the independent projections out
    /// across the exec pool. Output order matches input order; each code
    /// is identical to a single encode() call.
    std::vector<BitCode> encode_batch(
        std::span<const features::FeatureVec> plaintexts) const;

    /// DISTANCE(e1, e2): normalized Hamming distance between encodings;
    /// equals the plaintext Euclidean distance (in expectation, up to
    /// quantization noise) when that distance is below t.
    static double distance(const BitCode& e1, const BitCode& e2);

    const DenseDpeKey& key() const { return key_; }

private:
    DenseDpeKey key_;
    std::vector<float> matrix_;  // A, row-major M x N
    std::vector<float> dither_;  // w, length M
};

}  // namespace mie::dpe
