#include "net/faulty.hpp"

#include <algorithm>

namespace mie::net {

namespace {

bool is_send_kind(FaultKind kind) {
    return kind == FaultKind::kDropSend || kind == FaultKind::kResetSend;
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
    switch (kind) {
        case FaultKind::kNone: return "none";
        case FaultKind::kDropSend: return "drop-send";
        case FaultKind::kResetSend: return "reset-send";
        case FaultKind::kDropRecv: return "drop-recv";
        case FaultKind::kResetRecv: return "reset-recv";
        case FaultKind::kTruncateRecv: return "truncate-recv";
        case FaultKind::kCorruptRecv: return "corrupt-recv";
        case FaultKind::kDelayRecv: return "delay-recv";
    }
    return "unknown";
}

FaultyTransport::FaultyTransport(Transport& inner, FaultPlan plan)
    : inner_(inner), plan_(std::move(plan)), rng_(plan_.seed) {}

void FaultyTransport::schedule_fault(std::uint64_t op_index, FaultKind kind) {
    scripted_[op_index] = kind;
}

FaultKind FaultyTransport::fault_for(std::uint64_t op, bool send_phase) {
    FaultKind kind = FaultKind::kNone;
    if (const auto it = scripted_.find(op); it != scripted_.end()) {
        kind = it->second;
    } else if (plan_.rate > 0.0 && !plan_.kinds.empty() &&
               rng_.next_double() < plan_.rate) {
        // One extra draw selects the kind; both draws come from the same
        // seeded stream, so the whole schedule is a function of the seed.
        kind = plan_.kinds[rng_.next_below(plan_.kinds.size())];
    }
    if (kind == FaultKind::kNone) return kind;
    return is_send_kind(kind) == send_phase ? kind : FaultKind::kNone;
}

void FaultyTransport::inject(FaultKind kind) {
    ++stats_.faults_injected;
    ++stats_.by_kind[static_cast<std::size_t>(kind)];
    switch (kind) {
        case FaultKind::kDropSend:
            throw TransportError(TransportErrorKind::kTimeout,
                                 "injected: request dropped");
        case FaultKind::kResetSend:
            broken_ = true;
            throw TransportError(TransportErrorKind::kConnectionReset,
                                 "injected: reset before delivery");
        case FaultKind::kDropRecv:
            throw TransportError(TransportErrorKind::kTimeout,
                                 "injected: response dropped");
        case FaultKind::kResetRecv:
            broken_ = true;
            throw TransportError(TransportErrorKind::kConnectionReset,
                                 "injected: reset after delivery");
        case FaultKind::kTruncateRecv:
            broken_ = true;
            throw TransportError(TransportErrorKind::kTruncatedFrame,
                                 "injected: response truncated mid-frame");
        case FaultKind::kCorruptRecv:
            throw TransportError(TransportErrorKind::kCorruptFrame,
                                 "injected: response corrupted");
        case FaultKind::kDelayRecv:
            throw TransportError(TransportErrorKind::kTimeout,
                                 "injected: response past deadline");
        case FaultKind::kNone: break;
    }
    throw TransportError(TransportErrorKind::kConnectionReset,
                         "injected: unknown fault");
}

Bytes FaultyTransport::call(BytesView request) {
    ++stats_.calls;
    if (broken_) {
        // A reset/truncated connection stays dead until reconnect(), like
        // a real socket: count the doomed ops so scripted indices line up.
        next_op_ += 2;
        throw TransportError(TransportErrorKind::kConnectionReset,
                             "connection broken; reconnect required");
    }

    const FaultKind send_fault = fault_for(next_op_++, /*send_phase=*/true);
    if (send_fault != FaultKind::kNone) {
        ++next_op_;  // the recv op never happens; keep indices per-call
        inject(send_fault);
    }

    Bytes response = inner_.call(request);  // the server applies here

    const FaultKind recv_fault = fault_for(next_op_++, /*send_phase=*/false);
    if (recv_fault == FaultKind::kDelayRecv) {
        injected_delay_seconds_ += plan_.delay_seconds;
        if (plan_.deadline_seconds > 0.0 &&
            plan_.delay_seconds >= plan_.deadline_seconds) {
            inject(recv_fault);  // response arrives too late to count
        }
        ++stats_.faults_injected;
        ++stats_.by_kind[static_cast<std::size_t>(recv_fault)];
        return response;  // benign delay: slower, still delivered
    }
    if (recv_fault != FaultKind::kNone) inject(recv_fault);
    return response;
}

void FaultyTransport::reconnect() {
    broken_ = false;
    ++stats_.reconnects;
    inner_.reconnect();
}

}  // namespace mie::net
