// Bounded-retry transport decorator: the client side of fault tolerance.
//
// Wraps any Transport and turns transient TransportErrors into bounded
// retries with exponential backoff and deterministic seeded jitter.
// Before each retry the inner transport is reconnect()ed — after a
// timeout or mid-frame failure the stream may be desynchronized, so the
// only safe resumption point is a fresh connection. Mutating requests
// stay safe to replay because scheme clients envelope them with
// idempotent op ids (see envelope.hpp) and servers dedupe.
//
// Server-side *protocol* exceptions (std::invalid_argument and friends
// surfaced through in-process transports) are never retried: they would
// fail identically every time.
#pragma once

#include <cstdint>
#include <functional>

#include "net/error.hpp"
#include "net/transport.hpp"
#include "util/rng.hpp"

namespace mie::net {

struct RetryPolicy {
    /// Total attempts per call (1 = no retries).
    int max_attempts = 4;
    /// First backoff; doubles (times `multiplier`) per retry.
    double base_backoff_seconds = 0.010;
    double backoff_multiplier = 2.0;
    double max_backoff_seconds = 2.0;
    /// Seeds the jitter stream; same seed -> same backoff sequence.
    std::uint64_t jitter_seed = 0x5eedu;
};

class RetryingTransport final : public Transport {
public:
    /// `inner` must outlive this transport.
    explicit RetryingTransport(Transport& inner, RetryPolicy policy = {});

    /// Calls through `inner`, retrying transient TransportErrors up to
    /// policy.max_attempts total attempts. Rethrows the last
    /// TransportError once attempts are exhausted.
    Bytes call(BytesView request) override;

    void reconnect() override { inner_.reconnect(); }

    /// Inner wire time plus backoff waits (the user perceives both).
    double network_seconds() const override {
        return inner_.network_seconds() + stats_.backoff_seconds;
    }
    double server_seconds() const override {
        return inner_.server_seconds();
    }

    struct Stats {
        std::uint64_t calls = 0;       ///< logical call() invocations
        std::uint64_t attempts = 0;    ///< physical attempts (>= calls)
        std::uint64_t retries = 0;     ///< attempts beyond the first
        std::uint64_t reconnects = 0;  ///< successful reconnect()s
        std::uint64_t exhausted = 0;   ///< calls that gave up
        std::uint64_t timeouts = 0;    ///< attempts that timed out
        double backoff_seconds = 0.0;  ///< total backoff waited
    };
    const Stats& stats() const { return stats_; }

    /// Replaces the wait function (default: real sleep). Tests and
    /// simulation benches install a no-op so backoff stays modeled time
    /// only; stats().backoff_seconds accumulates either way.
    void set_sleeper(std::function<void(double)> sleeper) {
        sleeper_ = std::move(sleeper);
    }

private:
    double next_backoff(int retry_index);

    Transport& inner_;
    RetryPolicy policy_;
    SplitMix64 jitter_;
    Stats stats_;
    std::function<void(double)> sleeper_;
};

}  // namespace mie::net
