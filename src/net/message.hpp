// Length-prefixed binary message serialization for client <-> cloud RPCs.
//
// All scheme traffic (MIE, MSSE, Hom-MSSE) is serialized through these
// writers/readers so the transport can meter real byte counts — the
// Network sub-operation of Figs. 2-5 depends on them.
#pragma once

#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>

#include "util/bytes.hpp"

namespace mie::net {

class MessageWriter {
public:
    void write_u8(std::uint8_t v) { buffer_.push_back(v); }
    void write_u32(std::uint32_t v) { append_le(buffer_, v); }
    void write_u64(std::uint64_t v) { append_le(buffer_, v); }

    void write_f64(double v) {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        append_le(buffer_, bits);
    }

    void write_f32(float v) {
        std::uint32_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        append_le(buffer_, bits);
    }

    /// Writes a length-prefixed byte string.
    void write_bytes(BytesView data) {
        write_u32(static_cast<std::uint32_t>(data.size()));
        buffer_.insert(buffer_.end(), data.begin(), data.end());
    }

    void write_string(std::string_view s) {
        write_bytes(BytesView(reinterpret_cast<const std::uint8_t*>(s.data()),
                              s.size()));
    }

    Bytes take() { return std::move(buffer_); }
    std::size_t size() const { return buffer_.size(); }

private:
    Bytes buffer_;
};

class MessageReader {
public:
    explicit MessageReader(BytesView data) : data_(data) {}

    std::uint8_t read_u8() {
        require(1);
        return data_[offset_++];
    }
    std::uint32_t read_u32() {
        const auto v = read_le<std::uint32_t>(data_, offset_);
        offset_ += 4;
        return v;
    }
    std::uint64_t read_u64() {
        const auto v = read_le<std::uint64_t>(data_, offset_);
        offset_ += 8;
        return v;
    }
    double read_f64() {
        const auto bits = read_u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }
    float read_f32() {
        const auto bits = read_u32();
        float v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }
    Bytes read_bytes() {
        const auto len = read_u32();
        require(len);
        Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(offset_),
                  data_.begin() + static_cast<std::ptrdiff_t>(offset_ + len));
        offset_ += len;
        return out;
    }
    std::string read_string() {
        const Bytes raw = read_bytes();
        return std::string(raw.begin(), raw.end());
    }

    bool at_end() const { return offset_ == data_.size(); }
    std::size_t remaining() const { return data_.size() - offset_; }

private:
    void require(std::size_t n) const {
        if (offset_ + n > data_.size()) {
            throw std::out_of_range("MessageReader: truncated message");
        }
    }

    BytesView data_;
    std::size_t offset_ = 0;
};

}  // namespace mie::net
