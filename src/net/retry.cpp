#include "net/retry.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace mie::net {

RetryingTransport::RetryingTransport(Transport& inner, RetryPolicy policy)
    : inner_(inner),
      policy_(policy),
      jitter_(policy.jitter_seed),
      sleeper_([](double seconds) {
          std::this_thread::sleep_for(
              std::chrono::duration<double>(seconds));
      }) {}

double RetryingTransport::next_backoff(int retry_index) {
    double backoff = policy_.base_backoff_seconds;
    for (int i = 0; i < retry_index; ++i) backoff *= policy_.backoff_multiplier;
    backoff = std::min(backoff, policy_.max_backoff_seconds);
    // Deterministic jitter in [0.5, 1.0) of the nominal backoff keeps
    // concurrent clients from retrying in lockstep while staying
    // reproducible from the seed.
    return backoff * (0.5 + 0.5 * jitter_.next_double());
}

Bytes RetryingTransport::call(BytesView request) {
    ++stats_.calls;
    const int attempts = std::max(policy_.max_attempts, 1);
    for (int attempt = 0;; ++attempt) {
        try {
            ++stats_.attempts;
            return inner_.call(request);
        } catch (const TransportError& error) {
            if (error.kind() == TransportErrorKind::kTimeout ||
                error.kind() == TransportErrorKind::kConnectTimeout) {
                ++stats_.timeouts;
            }
            if (attempt + 1 >= attempts || !error.retryable()) {
                ++stats_.exhausted;
                throw;
            }
            const double backoff = next_backoff(attempt);
            stats_.backoff_seconds += backoff;
            sleeper_(backoff);
            // The failed attempt may have left the stream desynchronized
            // (a late response could alias the next request); a fresh
            // connection is the only safe resumption point.
            try {
                inner_.reconnect();
                ++stats_.reconnects;
            } catch (const TransportError&) {
                // The peer may still be down; the next attempt (or its
                // reconnect) reports the failure if it persists.
            }
            ++stats_.retries;
        }
    }
}

}  // namespace mie::net
