// Checksummed wire framing for the TCP transport.
//
// Every message travels as one frame:
//
//   offset 0   u32 LE   magic 0x4D494546 ("FEIM" on the wire)
//   offset 4   u32 LE   payload length
//   offset 8   u32 LE   CRC-32C of the payload
//   offset 12  bytes    payload
//
// The magic rejects desynchronized streams immediately, the length is
// capped so a lying peer cannot trigger a runaway allocation, and the
// CRC-32C catches payload corruption that TCP's 16-bit checksum misses on
// flaky links (the paper's mobile setting). Parse failures are typed
// TransportErrors so the retry layer can treat them as transient.
#pragma once

#include <cstdint>
#include <optional>

#include "net/error.hpp"
#include "util/bytes.hpp"

namespace mie::net {

constexpr std::size_t kFrameHeaderSize = 12;
constexpr std::uint32_t kFrameMagic = 0x4D494546u;
constexpr std::uint32_t kMaxFramePayload = 256u << 20;  // 256 MiB sanity cap

struct FrameHeader {
    std::uint32_t length = 0;
    std::uint32_t crc = 0;
};

/// Serializes the header for `payload` into `out[kFrameHeaderSize]`.
void encode_frame_header(BytesView payload,
                         std::uint8_t out[kFrameHeaderSize]);

/// One self-contained frame (header + payload), for in-memory use.
Bytes encode_frame(BytesView payload);

/// Validates magic and length. Throws TransportError(kCorruptFrame) on a
/// bad magic or an oversized length.
FrameHeader parse_frame_header(const std::uint8_t header[kFrameHeaderSize]);

/// Checks the payload against the header's CRC. Throws
/// TransportError(kCorruptFrame) on mismatch (including a length lie that
/// shifted the payload).
void verify_frame_payload(const FrameHeader& header, BytesView payload);

/// Incremental frame decoder: feed() arbitrary chunks, next() yields one
/// complete verified payload at a time. Never reads outside the fed
/// bytes and never buffers more than header + declared payload length.
/// Throws TransportError(kCorruptFrame) from next() when the stream is
/// unrecoverably bad; the decoder must be discarded afterwards.
class FrameDecoder {
public:
    void feed(BytesView data) {
        buffer_.insert(buffer_.end(), data.begin(), data.end());
    }

    /// Returns the next complete payload, or nullopt if more bytes are
    /// needed.
    std::optional<Bytes> next() {
        if (buffer_.size() < kFrameHeaderSize) return std::nullopt;
        const FrameHeader header = parse_frame_header(buffer_.data());
        const std::size_t total = kFrameHeaderSize + header.length;
        if (buffer_.size() < total) return std::nullopt;
        Bytes payload(buffer_.begin() + kFrameHeaderSize,
                      buffer_.begin() + static_cast<std::ptrdiff_t>(total));
        verify_frame_payload(header, payload);
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() + static_cast<std::ptrdiff_t>(total));
        return payload;
    }

    std::size_t buffered() const { return buffer_.size(); }

private:
    Bytes buffer_;
};

}  // namespace mie::net
