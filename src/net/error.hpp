// Typed transport failures.
//
// Every network-layer failure a scheme client can observe is a
// TransportError with a machine-readable kind, so callers (and the retry
// layer) can distinguish "the link hiccuped, try again" from "the server
// rejected the request" (which arrives as the server's own exception type
// and is never retried). A bare std::runtime_error escaping the transport
// is a bug.
#pragma once

#include <stdexcept>
#include <string>

namespace mie::net {

enum class TransportErrorKind : std::uint8_t {
    kConnectFailed = 1,   ///< dial failed (refused, unreachable, bad addr)
    kConnectTimeout = 2,  ///< dial exceeded the connect deadline
    kTimeout = 3,         ///< send/recv exceeded the per-operation deadline
    kConnectionReset = 4, ///< peer closed or reset the connection
    kTruncatedFrame = 5,  ///< connection died mid-frame
    kCorruptFrame = 6,    ///< frame failed magic/length/checksum validation
};

inline const char* transport_error_name(TransportErrorKind kind) {
    switch (kind) {
        case TransportErrorKind::kConnectFailed: return "connect-failed";
        case TransportErrorKind::kConnectTimeout: return "connect-timeout";
        case TransportErrorKind::kTimeout: return "timeout";
        case TransportErrorKind::kConnectionReset: return "connection-reset";
        case TransportErrorKind::kTruncatedFrame: return "truncated-frame";
        case TransportErrorKind::kCorruptFrame: return "corrupt-frame";
    }
    return "unknown";
}

class TransportError : public std::runtime_error {
public:
    TransportError(TransportErrorKind kind, const std::string& message)
        : std::runtime_error(std::string(transport_error_name(kind)) +
                             ": " + message),
          kind_(kind) {}

    TransportErrorKind kind() const { return kind_; }

    /// All transport-level failures are transient from the client's point
    /// of view (a reset server may be restarting, a corrupt frame may be a
    /// one-off link error); server-side *protocol* errors are not
    /// TransportErrors and are never retried.
    bool retryable() const { return true; }

private:
    TransportErrorKind kind_;
};

}  // namespace mie::net
