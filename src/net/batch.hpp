// Batched request handling: the server-side contract behind group commit.
//
// A RequestHandler answers one request at a time; a BatchRequestHandler
// answers a *batch* collected by the reactor's group-commit queue, which
// lets a durable implementation amortize per-batch costs (one WAL fsync
// for every mutation in the batch) while still producing one response per
// request. Failures are per-request: an invalid request inside a batch
// must not poison its neighbours, so each slot carries either a response
// or the exception that request would have thrown on the serial path.
#pragma once

#include <exception>
#include <vector>

#include "net/transport.hpp"
#include "util/bytes.hpp"

namespace mie::net {

class BatchRequestHandler {
public:
    /// One request's outcome: exactly one of `response` (error == nullptr)
    /// or `error` is meaningful.
    struct Result {
        Bytes response;
        std::exception_ptr error;
    };

    virtual ~BatchRequestHandler() = default;

    /// Handles `requests` in order and returns one Result per request
    /// (same indexing). Durable implementations must not acknowledge any
    /// request of the batch until the whole batch is durable — the
    /// committer acks each client only after this returns.
    virtual std::vector<Result> handle_batch(
        const std::vector<Bytes>& requests) = 0;
};

/// Adapts a plain RequestHandler: each request is handled independently,
/// exceptions are captured per slot. No cross-request amortization — used
/// for non-durable servers and as the reference semantics batched
/// implementations must match.
class SerialBatchHandler final : public BatchRequestHandler {
public:
    explicit SerialBatchHandler(RequestHandler& inner) : inner_(inner) {}

    std::vector<Result> handle_batch(
        const std::vector<Bytes>& requests) override {
        std::vector<Result> results(requests.size());
        for (std::size_t i = 0; i < requests.size(); ++i) {
            try {
                results[i].response = inner_.handle(requests[i]);
            } catch (...) {
                results[i].error = std::current_exception();
            }
        }
        return results;
    }

private:
    RequestHandler& inner_;
};

}  // namespace mie::net
