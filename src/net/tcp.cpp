#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

#include "util/stopwatch.hpp"

namespace mie::net {

namespace {

/// Reads exactly `length` bytes; returns false on orderly shutdown before
/// any byte, throws on mid-message EOF or errors.
bool read_exact(int fd, std::uint8_t* out, std::size_t length) {
    std::size_t received = 0;
    while (received < length) {
        const ssize_t n = ::recv(fd, out + received, length - received, 0);
        if (n == 0) {
            if (received == 0) return false;  // clean close between frames
            throw std::runtime_error("tcp: connection closed mid-message");
        }
        if (n < 0) {
            if (errno == EINTR) continue;
            throw std::runtime_error("tcp: recv failed");
        }
        received += static_cast<std::size_t>(n);
    }
    return true;
}

void write_all(int fd, const std::uint8_t* data, std::size_t length) {
    std::size_t sent = 0;
    while (sent < length) {
        const ssize_t n = ::send(fd, data + sent, length - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw std::runtime_error("tcp: send failed");
        }
        sent += static_cast<std::size_t>(n);
    }
}

void write_frame(int fd, BytesView payload) {
    std::uint8_t header[4];
    const auto length = static_cast<std::uint32_t>(payload.size());
    header[0] = static_cast<std::uint8_t>(length);
    header[1] = static_cast<std::uint8_t>(length >> 8);
    header[2] = static_cast<std::uint8_t>(length >> 16);
    header[3] = static_cast<std::uint8_t>(length >> 24);
    write_all(fd, header, 4);
    write_all(fd, payload.data(), payload.size());
}

/// Returns false on clean close before a frame starts.
bool read_frame(int fd, Bytes& out) {
    std::uint8_t header[4];
    if (!read_exact(fd, header, 4)) return false;
    const std::uint32_t length =
        static_cast<std::uint32_t>(header[0]) |
        (static_cast<std::uint32_t>(header[1]) << 8) |
        (static_cast<std::uint32_t>(header[2]) << 16) |
        (static_cast<std::uint32_t>(header[3]) << 24);
    constexpr std::uint32_t kMaxFrame = 256u << 20;  // 256 MiB sanity cap
    if (length > kMaxFrame) {
        throw std::runtime_error("tcp: oversized frame");
    }
    out.resize(length);
    if (length > 0 && !read_exact(fd, out.data(), length)) {
        throw std::runtime_error("tcp: connection closed mid-message");
    }
    return true;
}

}  // namespace

TcpServer::TcpServer(RequestHandler& handler, std::uint16_t port)
    : handler_(handler) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error("tcp: socket failed");
    const int enable = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable,
                 sizeof(enable));

    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    address.sin_port = htons(port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
               sizeof(address)) != 0) {
        ::close(listen_fd_);
        throw std::runtime_error("tcp: bind failed");
    }
    if (::listen(listen_fd_, 16) != 0) {
        ::close(listen_fd_);
        throw std::runtime_error("tcp: listen failed");
    }
    socklen_t address_length = sizeof(address);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&address),
                      &address_length) != 0) {
        ::close(listen_fd_);
        throw std::runtime_error("tcp: getsockname failed");
    }
    port_ = ntohs(address.sin_port);
}

TcpServer::~TcpServer() { stop(); }

void TcpServer::start() {
    bool expected = false;
    if (!running_.compare_exchange_strong(expected, true)) return;
    accept_thread_ = std::thread([this] { accept_loop(); });
}

void TcpServer::stop() {
    running_.store(false);
    // Claim the fd before touching it so the accept loop never sees a
    // closed-and-reused descriptor.
    if (const int fd = listen_fd_.exchange(-1); fd >= 0) {
        ::shutdown(fd, SHUT_RDWR);
        ::close(fd);
    }
    if (accept_thread_.joinable()) accept_thread_.join();
    {
        const std::scoped_lock lock(connections_mutex_);
        for (int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
    }
    for (auto& thread : connection_threads_) {
        if (thread.joinable()) thread.join();
    }
    connection_threads_.clear();
    connection_fds_.clear();
}

void TcpServer::accept_loop() {
    while (running_.load()) {
        const int listen_fd = listen_fd_.load();
        if (listen_fd < 0) break;
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR) continue;
            break;  // listener closed
        }
        const std::scoped_lock lock(connections_mutex_);
        connection_fds_.push_back(fd);
        connection_threads_.emplace_back(
            [this, fd] { serve_connection(fd); });
    }
}

void TcpServer::serve_connection(int fd) {
    try {
        Bytes request;
        while (running_.load() && read_frame(fd, request)) {
            const Bytes response = handler_.handle(request);
            write_frame(fd, response);
        }
    } catch (const std::exception&) {
        // Connection-level failure: drop this client, keep serving others.
    }
    ::close(fd);
}

TcpTransport::TcpTransport(const std::string& host, std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::runtime_error("tcp: socket failed");
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
        ::close(fd_);
        throw std::runtime_error("tcp: bad address " + host);
    }
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                  sizeof(address)) != 0) {
        ::close(fd_);
        throw std::runtime_error("tcp: connect failed");
    }
}

TcpTransport::~TcpTransport() {
    if (fd_ >= 0) ::close(fd_);
}

Bytes TcpTransport::call(BytesView request) {
    const Stopwatch watch;
    write_frame(fd_, request);
    Bytes response;
    if (!read_frame(fd_, response)) {
        throw std::runtime_error("tcp: server closed connection");
    }
    network_seconds_ += watch.elapsed_seconds();
    return response;
}

}  // namespace mie::net
