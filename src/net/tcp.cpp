#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "net/frame.hpp"
#include "util/stopwatch.hpp"

namespace mie::net {

namespace {

// ---------------------------------------------------------------------------
// Server side: blocking I/O. Connection threads park in recv() between
// requests and are torn down via shutdown() from stop().
// ---------------------------------------------------------------------------

/// Reads exactly `length` bytes; returns false on orderly shutdown before
/// any byte, throws on mid-message EOF or errors.
bool read_exact(int fd, std::uint8_t* out, std::size_t length) {
    std::size_t received = 0;
    while (received < length) {
        const ssize_t n = ::recv(fd, out + received, length - received, 0);
        if (n == 0) {
            if (received == 0) return false;  // clean close between frames
            throw TransportError(TransportErrorKind::kTruncatedFrame,
                                 "connection closed mid-message");
        }
        if (n < 0) {
            if (errno == EINTR) continue;
            throw TransportError(TransportErrorKind::kConnectionReset,
                                 "recv failed");
        }
        received += static_cast<std::size_t>(n);
    }
    return true;
}

void write_all(int fd, const std::uint8_t* data, std::size_t length) {
    std::size_t sent = 0;
    while (sent < length) {
        const ssize_t n = ::send(fd, data + sent, length - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw TransportError(TransportErrorKind::kConnectionReset,
                                 "send failed");
        }
        sent += static_cast<std::size_t>(n);
    }
}

void write_frame(int fd, BytesView payload) {
    std::uint8_t header[kFrameHeaderSize];
    encode_frame_header(payload, header);
    write_all(fd, header, kFrameHeaderSize);
    write_all(fd, payload.data(), payload.size());
}

/// Returns false on clean close before a frame starts.
bool read_frame(int fd, Bytes& out) {
    std::uint8_t header[kFrameHeaderSize];
    if (!read_exact(fd, header, kFrameHeaderSize)) return false;
    const FrameHeader parsed = parse_frame_header(header);
    out.resize(parsed.length);
    if (parsed.length > 0 && !read_exact(fd, out.data(), parsed.length)) {
        throw TransportError(TransportErrorKind::kTruncatedFrame,
                             "connection closed mid-message");
    }
    verify_frame_payload(parsed, out);
    return true;
}

// ---------------------------------------------------------------------------
// Client side: non-blocking fd + poll with a per-call deadline, so a peer
// that accepts and then goes silent surfaces kTimeout instead of hanging
// the client forever.
// ---------------------------------------------------------------------------

/// Remaining budget of a deadline; `limit <= 0` disables the deadline.
struct Deadline {
    Stopwatch watch;
    double limit;

    /// Remaining milliseconds for poll(); -1 when no deadline is set.
    /// Throws kTimeout when the budget is exhausted.
    int remaining_ms() const {
        if (limit <= 0.0) return -1;
        const double remaining = limit - watch.elapsed_seconds();
        if (remaining <= 0.0) {
            throw TransportError(TransportErrorKind::kTimeout,
                                 "operation deadline exceeded");
        }
        // Round up so a positive budget never polls for 0 ms (busy loop).
        return static_cast<int>(remaining * 1000.0) + 1;
    }
};

void poll_or_timeout(int fd, short events, const Deadline& deadline) {
    pollfd pfd{fd, events, 0};
    const int n = ::poll(&pfd, 1, deadline.remaining_ms());
    if (n == 0) {
        throw TransportError(TransportErrorKind::kTimeout,
                             "operation deadline exceeded");
    }
    if (n < 0 && errno != EINTR) {
        throw TransportError(TransportErrorKind::kConnectionReset,
                             "poll failed");
    }
}

void send_all_deadline(int fd, const std::uint8_t* data, std::size_t length,
                       const Deadline& deadline) {
    std::size_t sent = 0;
    while (sent < length) {
        const ssize_t n = ::send(fd, data + sent, length - sent, MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            poll_or_timeout(fd, POLLOUT, deadline);
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        throw TransportError(TransportErrorKind::kConnectionReset,
                             "send failed");
    }
}

void recv_exact_deadline(int fd, std::uint8_t* out, std::size_t length,
                         const Deadline& deadline, bool mid_frame) {
    std::size_t received = 0;
    while (received < length) {
        const ssize_t n = ::recv(fd, out + received, length - received, 0);
        if (n > 0) {
            received += static_cast<std::size_t>(n);
            continue;
        }
        if (n == 0) {
            throw TransportError(
                mid_frame || received > 0
                    ? TransportErrorKind::kTruncatedFrame
                    : TransportErrorKind::kConnectionReset,
                "server closed connection");
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            poll_or_timeout(fd, POLLIN, deadline);
            continue;
        }
        if (errno == EINTR) continue;
        throw TransportError(TransportErrorKind::kConnectionReset,
                             "recv failed");
    }
}

/// RPC frames are small and latency-bound: without TCP_NODELAY the
/// second send() of a frame (header, then payload) sits behind Nagle
/// waiting for the peer's delayed ACK — a ~40 ms stall per request on an
/// otherwise idle connection. Every data socket disables Nagle.
void set_tcp_nodelay(int fd) {
    const int enable = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
}

void set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
        throw TransportError(TransportErrorKind::kConnectFailed,
                             "fcntl(O_NONBLOCK) failed");
    }
}

}  // namespace

bool is_transient_accept_error(int error) {
    switch (error) {
        case EINTR:
        case EAGAIN:
#if EAGAIN != EWOULDBLOCK
        case EWOULDBLOCK:
#endif
        case ECONNABORTED:
        case EMFILE:
        case ENFILE:
        case ENOBUFS:
        case ENOMEM:
        case EPROTO:
            return true;
        default:
            return false;
    }
}

TcpServer::TcpServer(RequestHandler& handler, std::uint16_t port)
    : handler_(handler) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error("tcp: socket failed");
    const int enable = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable,
                 sizeof(enable));

    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    address.sin_port = htons(port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
               sizeof(address)) != 0) {
        ::close(listen_fd_);
        throw std::runtime_error("tcp: bind failed");
    }
    // Backlog sized for bursts of simultaneous connects (a load test
    // launching dozens of clients at once): with a short backlog the
    // kernel resets handshakes the single-threaded accept loop has not
    // drained yet.
    if (::listen(listen_fd_, 128) != 0) {
        ::close(listen_fd_);
        throw std::runtime_error("tcp: listen failed");
    }
    socklen_t address_length = sizeof(address);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&address),
                      &address_length) != 0) {
        ::close(listen_fd_);
        throw std::runtime_error("tcp: getsockname failed");
    }
    port_ = ntohs(address.sin_port);
}

TcpServer::~TcpServer() { stop(); }

void TcpServer::start() {
    bool expected = false;
    if (!running_.compare_exchange_strong(expected, true)) return;
    accept_thread_ = std::thread([this] { accept_loop(); });
}

void TcpServer::stop() {
    running_.store(false);
    // Claim the fd before touching it so the accept loop never sees a
    // closed-and-reused descriptor.
    if (const int fd = listen_fd_.exchange(-1); fd >= 0) {
        ::shutdown(fd, SHUT_RDWR);
        ::close(fd);
    }
    if (accept_thread_.joinable()) accept_thread_.join();
    {
        const std::scoped_lock lock(connections_mutex_);
        for (int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
    }
    for (auto& thread : connection_threads_) {
        if (thread.joinable()) thread.join();
    }
    connection_threads_.clear();
    connection_fds_.clear();
}

void TcpServer::accept_loop() {
    while (running_.load()) {
        const int listen_fd = listen_fd_.load();
        if (listen_fd < 0) break;
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (is_transient_accept_error(errno)) {
                // Count and keep serving: one aborted handshake or a
                // transient fd/buffer shortage must not take the whole
                // server down. Descriptor exhaustion would otherwise
                // busy-loop (accept keeps failing immediately), so back
                // off briefly to let connections close.
                accept_transient_errors_.fetch_add(1);
                if (errno == EMFILE || errno == ENFILE ||
                    errno == ENOBUFS || errno == ENOMEM) {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(10));
                }
                continue;
            }
            break;  // listener closed or unusable
        }
        set_tcp_nodelay(fd);
        const std::scoped_lock lock(connections_mutex_);
        connection_fds_.push_back(fd);
        connection_threads_.emplace_back(
            [this, fd] { serve_connection(fd); });
    }
}

void TcpServer::serve_connection(int fd) {
    try {
        Bytes request;
        while (running_.load() && read_frame(fd, request)) {
            const Bytes response = handler_.handle(request);
            write_frame(fd, response);
        }
    } catch (const std::exception&) {
        // Connection-level failure (including a corrupt frame from the
        // peer): drop this client, keep serving others.
    }
    ::close(fd);
}

TcpTransport::TcpTransport(const std::string& host, std::uint16_t port,
                           TcpOptions options)
    : host_(host), remote_port_(port), options_(options) {
    dial();
}

void TcpTransport::dial() {
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(remote_port_);
    if (::inet_pton(AF_INET, host_.c_str(), &address.sin_addr) != 1) {
        throw TransportError(TransportErrorKind::kConnectFailed,
                             "bad address " + host_);
    }
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        throw TransportError(TransportErrorKind::kConnectFailed,
                             "socket failed");
    }
    try {
        set_tcp_nodelay(fd_);
        set_nonblocking(fd_);
        if (::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                      sizeof(address)) != 0) {
            if (errno != EINPROGRESS) {
                throw TransportError(TransportErrorKind::kConnectFailed,
                                     "connect failed");
            }
            // Non-blocking connect: wait for writability, then read the
            // final status from SO_ERROR.
            pollfd pfd{fd_, POLLOUT, 0};
            const int timeout_ms =
                options_.connect_timeout_seconds <= 0.0
                    ? -1
                    : static_cast<int>(
                          options_.connect_timeout_seconds * 1000.0) + 1;
            int n;
            do {
                n = ::poll(&pfd, 1, timeout_ms);
            } while (n < 0 && errno == EINTR);
            if (n == 0) {
                throw TransportError(TransportErrorKind::kConnectTimeout,
                                     "connect deadline exceeded");
            }
            int so_error = 0;
            socklen_t len = sizeof(so_error);
            if (n < 0 ||
                ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &so_error, &len) !=
                    0 ||
                so_error != 0) {
                throw TransportError(TransportErrorKind::kConnectFailed,
                                     "connect failed");
            }
        }
    } catch (...) {
        ::close(fd_);
        fd_ = -1;
        throw;
    }
}

void TcpTransport::mark_broken() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void TcpTransport::reconnect() {
    mark_broken();
    dial();
}

TcpTransport::~TcpTransport() {
    if (fd_ >= 0) ::close(fd_);
}

Bytes TcpTransport::call(BytesView request) {
    if (fd_ < 0) {
        throw TransportError(TransportErrorKind::kConnectionReset,
                             "connection broken; reconnect required");
    }
    const Stopwatch watch;
    const Deadline deadline{Stopwatch(), options_.io_timeout_seconds};
    try {
        std::uint8_t header[kFrameHeaderSize];
        encode_frame_header(request, header);
        send_all_deadline(fd_, header, kFrameHeaderSize, deadline);
        send_all_deadline(fd_, request.data(), request.size(), deadline);

        std::uint8_t response_header[kFrameHeaderSize];
        recv_exact_deadline(fd_, response_header, kFrameHeaderSize, deadline,
                            /*mid_frame=*/false);
        const FrameHeader parsed = parse_frame_header(response_header);
        Bytes response(parsed.length);
        if (parsed.length > 0) {
            recv_exact_deadline(fd_, response.data(), parsed.length, deadline,
                                /*mid_frame=*/true);
        }
        verify_frame_payload(parsed, response);
        network_seconds_ += watch.elapsed_seconds();
        return response;
    } catch (const TransportError&) {
        // Any failed call leaves the stream position unknown (a late
        // response would alias the next call's reply); kill the socket so
        // the retry layer must reconnect.
        mark_broken();
        throw;
    }
}

}  // namespace mie::net
