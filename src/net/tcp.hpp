// TCP transport: the same RequestHandler interface served over real
// sockets.
//
// The simulation benches use the in-process MeteredTransport; this module
// proves the client/server separation is genuine by running the identical
// wire protocol over TCP. A production deployment would put TLS in front
// (the paper assumes TLS for all remote communication, §III-A); framing is
// a 4-byte little-endian length prefix per message in both directions.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/transport.hpp"

namespace mie::net {

/// Serves a RequestHandler on a TCP port. Each connection gets its own
/// thread; requests on one connection are processed in order.
class TcpServer {
public:
    /// Binds and listens on 127.0.0.1:`port` (0 = ephemeral; see port()).
    /// Throws std::runtime_error on socket failures.
    explicit TcpServer(RequestHandler& handler, std::uint16_t port = 0);

    /// Stops the server and joins all threads.
    ~TcpServer();

    TcpServer(const TcpServer&) = delete;
    TcpServer& operator=(const TcpServer&) = delete;

    /// Starts the accept loop (idempotent).
    void start();

    /// Stops accepting, closes connections, joins threads (idempotent).
    void stop();

    /// The bound port (useful with port = 0).
    std::uint16_t port() const { return port_; }

private:
    void accept_loop();
    void serve_connection(int fd);

    RequestHandler& handler_;
    // Atomic: stop() retires the fd while accept_loop() is still reading it.
    std::atomic<int> listen_fd_{-1};
    std::uint16_t port_ = 0;
    std::atomic<bool> running_{false};
    std::thread accept_thread_;
    std::mutex connections_mutex_;
    std::vector<int> connection_fds_;
    std::vector<std::thread> connection_threads_;
};

/// Client-side connection to a TcpServer. One synchronous request at a
/// time per transport (matching the scheme clients' usage).
class TcpTransport final : public Transport {
public:
    /// Connects to host:port; throws std::runtime_error on failure.
    TcpTransport(const std::string& host, std::uint16_t port);
    ~TcpTransport() override;

    TcpTransport(const TcpTransport&) = delete;
    TcpTransport& operator=(const TcpTransport&) = delete;

    /// Sends the framed request and blocks for the framed response.
    /// Throws std::runtime_error if the connection drops.
    Bytes call(BytesView request) override;

    /// Measured wall time spent inside call() — wire + server, since a
    /// real socket cannot observe them separately.
    double network_seconds() const override { return network_seconds_; }

private:
    int fd_ = -1;
    double network_seconds_ = 0.0;
};

}  // namespace mie::net
