// TCP transport: the same RequestHandler interface served over real
// sockets.
//
// The simulation benches use the in-process MeteredTransport; this module
// proves the client/server separation is genuine by running the identical
// wire protocol over TCP. A production deployment would put TLS in front
// (the paper assumes TLS for all remote communication, §III-A); framing is
// the checksummed header of net/frame.hpp in both directions.
//
// The client side is built for flaky links: connects and per-call I/O are
// poll-based with deadlines, every failure is a typed TransportError
// (never a hang), and reconnect() re-dials so the retry layer can resume
// on a fresh stream.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/error.hpp"
#include "net/transport.hpp"

namespace mie::net {

/// True when an accept(2) failure with this errno is transient — the
/// listener itself is still healthy and accepting must continue: an
/// aborted handshake (ECONNABORTED), a signal (EINTR), fd or buffer
/// exhaustion (EMFILE/ENFILE/ENOBUFS/ENOMEM), or an early protocol error
/// on the nascent connection (EPROTO). Anything else (EBADF, EINVAL, a
/// closed listener) is fatal to the accept loop. Shared by the blocking
/// TcpServer and the reactor so both degrade gracefully under fd
/// pressure instead of shutting down.
bool is_transient_accept_error(int error);

/// Serves a RequestHandler on a TCP port. Each connection gets its own
/// thread; requests on one connection are processed in order.
class TcpServer {
public:
    /// Binds and listens on 127.0.0.1:`port` (0 = ephemeral; see port()).
    /// Throws std::runtime_error on socket failures.
    explicit TcpServer(RequestHandler& handler, std::uint16_t port = 0);

    /// Stops the server and joins all threads.
    ~TcpServer();

    TcpServer(const TcpServer&) = delete;
    TcpServer& operator=(const TcpServer&) = delete;

    /// Starts the accept loop (idempotent).
    void start();

    /// Stops accepting, closes connections, joins threads (idempotent).
    void stop();

    /// The bound port (useful with port = 0).
    std::uint16_t port() const { return port_; }

    /// accept() failures survived (EMFILE, ECONNABORTED, ...) instead of
    /// shutting the server down.
    std::uint64_t accept_transient_errors() const {
        return accept_transient_errors_.load();
    }

private:
    void accept_loop();
    void serve_connection(int fd);

    RequestHandler& handler_;
    // Atomic: stop() retires the fd while accept_loop() is still reading it.
    std::atomic<int> listen_fd_{-1};
    std::uint16_t port_ = 0;
    std::atomic<bool> running_{false};
    std::atomic<std::uint64_t> accept_transient_errors_{0};
    std::thread accept_thread_;
    std::mutex connections_mutex_;
    std::vector<int> connection_fds_;
    std::vector<std::thread> connection_threads_;
};

/// Client-side socket deadlines. Zero or negative disables the deadline
/// (blocking behaviour, only sensible for debugging).
struct TcpOptions {
    double connect_timeout_seconds = 5.0;
    /// Deadline for one whole call(): send the request + receive the
    /// complete response.
    double io_timeout_seconds = 10.0;
};

/// Client-side connection to a TcpServer. One synchronous request at a
/// time per transport (matching the scheme clients' usage).
class TcpTransport final : public Transport {
public:
    /// Connects to host:port; throws TransportError on failure (including
    /// kConnectTimeout when the dial exceeds its deadline).
    TcpTransport(const std::string& host, std::uint16_t port,
                 TcpOptions options = {});
    ~TcpTransport() override;

    TcpTransport(const TcpTransport&) = delete;
    TcpTransport& operator=(const TcpTransport&) = delete;

    /// Sends the framed request and waits for the framed response, both
    /// under options.io_timeout_seconds. Throws a typed TransportError on
    /// timeout, reset, truncation, or checksum failure; after any throw
    /// the connection is dead until reconnect().
    Bytes call(BytesView request) override;

    /// Closes the (possibly dead) connection and re-dials.
    void reconnect() override;

    /// Measured wall time spent inside call() — wire + server, since a
    /// real socket cannot observe them separately.
    double network_seconds() const override { return network_seconds_; }

private:
    void dial();
    void mark_broken();

    std::string host_;
    std::uint16_t remote_port_ = 0;
    TcpOptions options_;
    int fd_ = -1;
    double network_seconds_ = 0.0;
};

}  // namespace mie::net
