// Deterministic network fault injection (the transport-layer sibling of
// store::FaultInjectingVfs).
//
// FaultyTransport decorates any Transport — the in-process
// MeteredTransport or a real TcpTransport — and injects faults from a
// seeded schedule at the Nth send/recv. Each call() is two I/O
// operations: the send (op 2k of that transport) and the recv (op 2k+1).
// Send-phase faults strike before the inner transport runs, so the server
// never sees the request; recv-phase faults strike after, so the server
// HAS applied the request but the client never learns — exactly the case
// that distinguishes at-least-once from exactly-once and that the replay
// cache must absorb.
//
// Faults are chosen two ways, both deterministic:
//   - schedule_fault(op, kind): scripted, fires at global I/O op `op`;
//   - FaultPlan{rate, seed}: each I/O op independently faults with
//     probability `rate`, kind drawn uniformly from `kinds`, all from a
//     SplitMix64 stream — same seed, same fault sequence, every run.
//
// Reset and truncate faults also break the connection: further calls fail
// with kConnectionReset until reconnect(), forcing the retry layer to
// exercise its reconnect path just like a real dropped socket would.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "net/error.hpp"
#include "net/transport.hpp"
#include "util/rng.hpp"

namespace mie::net {

enum class FaultKind : std::uint8_t {
    kNone = 0,
    kDropSend = 1,      ///< request vanishes; client times out
    kResetSend = 2,     ///< connection reset before delivery
    kDropRecv = 3,      ///< response vanishes after the server applied
    kResetRecv = 4,     ///< connection reset after the server applied
    kTruncateRecv = 5,  ///< connection dies mid-response-frame
    kCorruptRecv = 6,   ///< response frame fails its checksum
    kDelayRecv = 7,     ///< response delayed; times out iff a deadline is set
};
constexpr std::size_t kNumFaultKinds = 8;

const char* fault_kind_name(FaultKind kind);

/// Seeded random fault schedule. `rate` is the per-I/O-op fault
/// probability (a call is two ops, so its end-to-end fault probability is
/// about twice the rate).
struct FaultPlan {
    double rate = 0.0;
    std::uint64_t seed = 1;
    /// Kinds eligible for random injection (send kinds fire only on send
    /// ops, recv kinds only on recv ops).
    std::vector<FaultKind> kinds = {
        FaultKind::kDropSend,     FaultKind::kResetSend,
        FaultKind::kDropRecv,     FaultKind::kResetRecv,
        FaultKind::kTruncateRecv, FaultKind::kCorruptRecv,
        FaultKind::kDelayRecv,
    };
    /// Modeled extra latency of kDelayRecv.
    double delay_seconds = 0.25;
    /// Per-call deadline the injected delay is compared against; 0 means
    /// no deadline, so delays add latency but never fail the call.
    double deadline_seconds = 0.0;
};

class FaultyTransport final : public Transport {
public:
    /// `inner` must outlive this transport.
    explicit FaultyTransport(Transport& inner, FaultPlan plan = {});

    /// Scripts a fault at global I/O op `op_index` (0-based; overrides
    /// the random plan at that op). Send kinds fire only if `op_index`
    /// lands on a send op, recv kinds only on a recv op.
    void schedule_fault(std::uint64_t op_index, FaultKind kind);

    /// I/O ops issued so far (== index the next op will get).
    std::uint64_t ops_issued() const { return next_op_; }

    Bytes call(BytesView request) override;

    /// Clears the broken-connection state and reconnects the inner
    /// transport.
    void reconnect() override;

    double network_seconds() const override {
        return inner_.network_seconds() + injected_delay_seconds_;
    }
    double server_seconds() const override {
        return inner_.server_seconds();
    }

    struct Stats {
        std::uint64_t calls = 0;
        std::uint64_t faults_injected = 0;
        std::uint64_t reconnects = 0;
        std::array<std::uint64_t, kNumFaultKinds> by_kind{};
    };
    const Stats& stats() const { return stats_; }

private:
    /// The fault (if any) striking I/O op `op` in phase send/recv.
    FaultKind fault_for(std::uint64_t op, bool send_phase);
    [[noreturn]] void inject(FaultKind kind);

    Transport& inner_;
    FaultPlan plan_;
    SplitMix64 rng_;
    std::map<std::uint64_t, FaultKind> scripted_;
    std::uint64_t next_op_ = 0;
    bool broken_ = false;
    double injected_delay_seconds_ = 0.0;
    Stats stats_;
};

}  // namespace mie::net
