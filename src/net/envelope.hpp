// Idempotency envelope + replay cache for at-most-once mutating RPCs.
//
// A client that retries a mutating request cannot tell "the request never
// arrived" from "the response was lost after the server applied it". To
// make retries safe, scheme clients wrap every mutating request in an
// envelope carrying a client-assigned operation id:
//
//   offset 0   u8       magic 0xE7 (no scheme opcode uses this value)
//   offset 1   u64 LE   client id   (random per client instance)
//   offset 9   u64 LE   sequence    (monotonic per client)
//   offset 17  bytes    the inner request, unchanged
//
// Servers strip the envelope before dispatch; dedup-aware servers
// (DurableServer, or any handler behind DedupHandler) additionally keep a
// bounded (client, seq) -> response cache, so a replayed envelope returns
// the original response without re-applying the mutation — exactly-once
// server state under at-least-once delivery.
#pragma once

#include <cstdint>
#include <deque>
#include <list>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <unordered_map>

#include "crypto/entropy.hpp"
#include "net/transport.hpp"
#include "util/bytes.hpp"

namespace mie::net {

constexpr std::uint8_t kEnvelopeMagic = 0xE7;
constexpr std::size_t kEnvelopeHeaderSize = 17;

/// Process-unique client-instance nonce, mixed into envelope client ids.
/// Two client objects sharing a user secret must not share an id stream
/// (a restarted client would alias its predecessor's cached responses),
/// and the counter behind crypto::entropy::instance_nonce() keeps runs
/// reproducible: same construction order, same ids.
inline std::uint64_t next_client_instance() {
    return crypto::entropy::instance_nonce();
}

/// Mixes a secret-derived base id with the instance nonce.
inline std::uint64_t make_client_id(std::uint64_t derived_base) {
    return derived_base +
           0x9e3779b97f4a7c15ULL * (1 + next_client_instance());
}

struct Envelope {
    std::uint64_t client_id = 0;
    std::uint64_t seq = 0;
    BytesView inner;
};

inline Bytes envelope_wrap(std::uint64_t client_id, std::uint64_t seq,
                           BytesView inner) {
    Bytes out;
    out.reserve(kEnvelopeHeaderSize + inner.size());
    out.push_back(kEnvelopeMagic);
    for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<std::uint8_t>(client_id >> (8 * i)));
    }
    for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<std::uint8_t>(seq >> (8 * i)));
    }
    out.insert(out.end(), inner.begin(), inner.end());
    return out;
}

/// Returns the parsed envelope, or nullopt when `request` is not
/// enveloped. Throws std::invalid_argument on a truncated envelope.
inline std::optional<Envelope> parse_envelope(BytesView request) {
    if (request.empty() || request[0] != kEnvelopeMagic) return std::nullopt;
    if (request.size() < kEnvelopeHeaderSize) {
        throw std::invalid_argument("envelope: truncated header");
    }
    Envelope env;
    for (int i = 0; i < 8; ++i) {
        env.client_id |= static_cast<std::uint64_t>(request[1 + i])
                         << (8 * i);
    }
    for (int i = 0; i < 8; ++i) {
        env.seq |= static_cast<std::uint64_t>(request[9 + i]) << (8 * i);
    }
    env.inner = request.subspan(kEnvelopeHeaderSize);
    return env;
}

/// The inner request whether or not `request` is enveloped.
inline BytesView envelope_inner(BytesView request) {
    const auto env = parse_envelope(request);
    return env ? env->inner : request;
}

/// Bounded (client, seq) -> response map with PER-CLIENT eviction.
///
/// The earlier design was one global FIFO over (client, seq) pairs, which
/// bounded memory but not correctness: with more active clients than
/// capacity, other clients' traffic evicted a live client's only entry and
/// its retry re-applied — exactly-once silently degraded to at-least-once
/// under fleet-scale load. Eviction is now two-level, so one client's
/// volume can never push out another client's fresh entry:
///
///   - per client, only the `window_per_client` most recent seqs are kept
///     (clients are synchronous: a retry always targets a recent seq, and
///     envelope seqs are monotonic per client, so the window is a suffix);
///   - across clients, whole idle clients are evicted least-recently-
///     -inserted-first once more than `max_clients` are tracked.
///
/// Memory is bounded by max_clients * window_per_client responses. A
/// replay outside the retained window (an evicted client, or a seq older
/// than the window) re-applies; for this system's opcodes an in-order
/// suffix re-apply converges, and real retries never look that far back.
class ReplayCache {
public:
    explicit ReplayCache(std::size_t max_clients = 1024,
                         std::size_t window_per_client = 32)
        : max_clients_(max_clients == 0 ? 1 : max_clients),
          window_(window_per_client == 0 ? 1 : window_per_client) {}

    const Bytes* lookup(std::uint64_t client_id, std::uint64_t seq) const {
        const auto it = clients_.find(client_id);
        if (it == clients_.end()) return nullptr;
        for (const auto& [cached_seq, response] : it->second.window) {
            if (cached_seq == seq) return &response;
        }
        return nullptr;
    }

    void insert(std::uint64_t client_id, std::uint64_t seq, Bytes response) {
        auto it = clients_.find(client_id);
        if (it == clients_.end()) {
            while (clients_.size() >= max_clients_) {
                clients_.erase(lru_.front());
                lru_.pop_front();
            }
            lru_.push_back(client_id);
            it = clients_
                     .emplace(client_id,
                              Client{{}, std::prev(lru_.end())})
                     .first;
        } else {
            // Refresh recency so active clients outlive idle ones.
            lru_.erase(it->second.lru_pos);
            lru_.push_back(client_id);
            it->second.lru_pos = std::prev(lru_.end());
        }
        auto& window = it->second.window;
        for (const auto& [cached_seq, cached] : window) {
            if (cached_seq == seq) return;  // duplicate insert
        }
        window.emplace_back(seq, std::move(response));
        while (window.size() > window_) window.pop_front();
    }

    /// Total cached responses across all clients.
    std::size_t size() const {
        std::size_t total = 0;
        // mielint: allow(R3): commutative count
        for (const auto& [client_id, client] : clients_) {
            total += client.window.size();
        }
        return total;
    }

    std::size_t num_clients() const { return clients_.size(); }
    std::size_t window_per_client() const { return window_; }

private:
    struct Client {
        /// (seq, response), insertion order; bounded to window_. Lookups
        /// scan linearly — the window is small by construction.
        std::deque<std::pair<std::uint64_t, Bytes>> window;
        std::list<std::uint64_t>::iterator lru_pos;
    };

    std::size_t max_clients_;
    std::size_t window_;
    std::unordered_map<std::uint64_t, Client> clients_;
    /// Client ids, least recently inserted-into first.
    std::list<std::uint64_t> lru_;
};

/// RequestHandler decorator that gives any server exactly-once semantics
/// for enveloped requests: replays return the cached response without
/// reaching the inner handler. Non-enveloped requests pass through
/// untouched. Thread-safe; the inner handler runs outside the cache lock
/// (a client never has two in-flight attempts of the same op, so the
/// lookup/apply/insert race is benign).
class DedupHandler final : public RequestHandler {
public:
    explicit DedupHandler(RequestHandler& inner,
                          std::size_t max_clients = 1024,
                          std::size_t window_per_client = 32)
        : inner_(inner), cache_(max_clients, window_per_client) {}

    Bytes handle(BytesView request) override {
        const auto env = parse_envelope(request);
        if (!env) return inner_.handle(request);
        {
            const std::scoped_lock lock(mutex_);
            if (const Bytes* cached =
                    cache_.lookup(env->client_id, env->seq)) {
                ++replays_suppressed_;
                return *cached;
            }
        }
        Bytes response = inner_.handle(env->inner);
        const std::scoped_lock lock(mutex_);
        cache_.insert(env->client_id, env->seq, response);
        return response;
    }

    /// Number of replayed envelopes answered from the cache.
    std::uint64_t replays_suppressed() const {
        const std::scoped_lock lock(mutex_);
        return replays_suppressed_;
    }

private:
    RequestHandler& inner_;
    mutable std::mutex mutex_;
    ReplayCache cache_;
    std::uint64_t replays_suppressed_ = 0;
};

}  // namespace mie::net
