// Idempotency envelope + replay cache for at-most-once mutating RPCs.
//
// A client that retries a mutating request cannot tell "the request never
// arrived" from "the response was lost after the server applied it". To
// make retries safe, scheme clients wrap every mutating request in an
// envelope carrying a client-assigned operation id:
//
//   offset 0   u8       magic 0xE7 (no scheme opcode uses this value)
//   offset 1   u64 LE   client id   (random per client instance)
//   offset 9   u64 LE   sequence    (monotonic per client)
//   offset 17  bytes    the inner request, unchanged
//
// Servers strip the envelope before dispatch; dedup-aware servers
// (DurableServer, or any handler behind DedupHandler) additionally keep a
// bounded (client, seq) -> response cache, so a replayed envelope returns
// the original response without re-applying the mutation — exactly-once
// server state under at-least-once delivery.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <unordered_map>

#include "crypto/entropy.hpp"
#include "net/transport.hpp"
#include "util/bytes.hpp"

namespace mie::net {

constexpr std::uint8_t kEnvelopeMagic = 0xE7;
constexpr std::size_t kEnvelopeHeaderSize = 17;

/// Process-unique client-instance nonce, mixed into envelope client ids.
/// Two client objects sharing a user secret must not share an id stream
/// (a restarted client would alias its predecessor's cached responses),
/// and the counter behind crypto::entropy::instance_nonce() keeps runs
/// reproducible: same construction order, same ids.
inline std::uint64_t next_client_instance() {
    return crypto::entropy::instance_nonce();
}

/// Mixes a secret-derived base id with the instance nonce.
inline std::uint64_t make_client_id(std::uint64_t derived_base) {
    return derived_base +
           0x9e3779b97f4a7c15ULL * (1 + next_client_instance());
}

struct Envelope {
    std::uint64_t client_id = 0;
    std::uint64_t seq = 0;
    BytesView inner;
};

inline Bytes envelope_wrap(std::uint64_t client_id, std::uint64_t seq,
                           BytesView inner) {
    Bytes out;
    out.reserve(kEnvelopeHeaderSize + inner.size());
    out.push_back(kEnvelopeMagic);
    for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<std::uint8_t>(client_id >> (8 * i)));
    }
    for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<std::uint8_t>(seq >> (8 * i)));
    }
    out.insert(out.end(), inner.begin(), inner.end());
    return out;
}

/// Returns the parsed envelope, or nullopt when `request` is not
/// enveloped. Throws std::invalid_argument on a truncated envelope.
inline std::optional<Envelope> parse_envelope(BytesView request) {
    if (request.empty() || request[0] != kEnvelopeMagic) return std::nullopt;
    if (request.size() < kEnvelopeHeaderSize) {
        throw std::invalid_argument("envelope: truncated header");
    }
    Envelope env;
    for (int i = 0; i < 8; ++i) {
        env.client_id |= static_cast<std::uint64_t>(request[1 + i])
                         << (8 * i);
    }
    for (int i = 0; i < 8; ++i) {
        env.seq |= static_cast<std::uint64_t>(request[9 + i]) << (8 * i);
    }
    env.inner = request.subspan(kEnvelopeHeaderSize);
    return env;
}

/// The inner request whether or not `request` is enveloped.
inline BytesView envelope_inner(BytesView request) {
    const auto env = parse_envelope(request);
    return env ? env->inner : request;
}

/// Bounded FIFO map (client, seq) -> response. Capacity bounds memory:
/// a retry always follows its original closely (the client blocks on each
/// op), so even a small cache suppresses every realistic replay.
class ReplayCache {
public:
    explicit ReplayCache(std::size_t capacity = 1024)
        : capacity_(capacity == 0 ? 1 : capacity) {}

    const Bytes* lookup(std::uint64_t client_id, std::uint64_t seq) const {
        const auto it = entries_.find(key(client_id, seq));
        return it == entries_.end() ? nullptr : &it->second;
    }

    void insert(std::uint64_t client_id, std::uint64_t seq, Bytes response) {
        const Key k = key(client_id, seq);
        if (entries_.emplace(k, std::move(response)).second) {
            order_.push_back(k);
            while (order_.size() > capacity_) {
                entries_.erase(order_.front());
                order_.pop_front();
            }
        }
    }

    std::size_t size() const { return entries_.size(); }

private:
    struct Key {
        std::uint64_t client_id;
        std::uint64_t seq;
        bool operator==(const Key& o) const {
            return client_id == o.client_id && seq == o.seq;
        }
    };
    struct KeyHash {
        std::size_t operator()(const Key& k) const {
            // splitmix-style mix of the two words.
            std::uint64_t z = k.client_id + 0x9e3779b97f4a7c15ULL * k.seq;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            return static_cast<std::size_t>(z ^ (z >> 31));
        }
    };
    static Key key(std::uint64_t c, std::uint64_t s) { return Key{c, s}; }

    std::size_t capacity_;
    std::unordered_map<Key, Bytes, KeyHash> entries_;
    std::deque<Key> order_;
};

/// RequestHandler decorator that gives any server exactly-once semantics
/// for enveloped requests: replays return the cached response without
/// reaching the inner handler. Non-enveloped requests pass through
/// untouched. Thread-safe; the inner handler runs outside the cache lock
/// (a client never has two in-flight attempts of the same op, so the
/// lookup/apply/insert race is benign).
class DedupHandler final : public RequestHandler {
public:
    explicit DedupHandler(RequestHandler& inner, std::size_t capacity = 1024)
        : inner_(inner), cache_(capacity) {}

    Bytes handle(BytesView request) override {
        const auto env = parse_envelope(request);
        if (!env) return inner_.handle(request);
        {
            const std::scoped_lock lock(mutex_);
            if (const Bytes* cached =
                    cache_.lookup(env->client_id, env->seq)) {
                ++replays_suppressed_;
                return *cached;
            }
        }
        Bytes response = inner_.handle(env->inner);
        const std::scoped_lock lock(mutex_);
        cache_.insert(env->client_id, env->seq, response);
        return response;
    }

    /// Number of replayed envelopes answered from the cache.
    std::uint64_t replays_suppressed() const {
        const std::scoped_lock lock(mutex_);
        return replays_suppressed_;
    }

private:
    RequestHandler& inner_;
    mutable std::mutex mutex_;
    ReplayCache cache_;
    std::uint64_t replays_suppressed_ = 0;
};

}  // namespace mie::net
