// Client <-> cloud transport with metered traffic.
//
// Every scheme operation is a synchronous RPC: the client serializes a
// request, the transport delivers it to the server's RequestHandler, and
// the response travels back. MeteredTransport accounts real byte counts
// and models WAN cost (RTT + bytes/bandwidth) so the simulation layer can
// charge network time and radio energy; the experimental setup mirrors the
// paper's EC2 m3.large with 52.160 ms average round-trip time (§VII).
#pragma once

#include <cstdint>

#include "util/bytes.hpp"
#include "util/stopwatch.hpp"

namespace mie::net {

/// Server-side entry point: consumes a request, produces a response.
class RequestHandler {
public:
    virtual ~RequestHandler() = default;
    virtual Bytes handle(BytesView request) = 0;
};

/// Client-side entry point. The metering accessors let scheme clients
/// attribute communication cost regardless of the concrete transport:
/// modeled time for the simulated WAN, measured wall time for real
/// sockets, zero for transports that do not track it.
class Transport {
public:
    virtual ~Transport() = default;
    virtual Bytes call(BytesView request) = 0;

    /// Re-establishes a broken connection so the next call() can proceed
    /// (socket transports re-dial; in-process transports reset fault
    /// state). Default: nothing to reconnect. Throws TransportError when
    /// the peer cannot be reached.
    virtual void reconnect() {}

    /// Cumulative seconds attributable to the network itself.
    virtual double network_seconds() const { return 0.0; }

    /// Cumulative seconds the server spent processing (when known
    /// separately from transfer time; otherwise 0).
    virtual double server_seconds() const { return 0.0; }
};

/// WAN link model. Defaults match the paper's mobile setup: EC2 RTT plus
/// WiFi 802.11g effective throughput (~20 Mbit/s).
struct LinkProfile {
    double rtt_seconds = 0.052160;
    double uplink_bytes_per_second = 20e6 / 8;
    double downlink_bytes_per_second = 20e6 / 8;

    /// Paper's desktop client: 100 Mbit/s ethernet, same EC2 RTT.
    static LinkProfile desktop() {
        return LinkProfile{0.052160, 100e6 / 8, 100e6 / 8};
    }
    /// Paper's mobile client: WiFi 802.11g.
    static LinkProfile mobile() { return LinkProfile{}; }
    /// Zero-latency link for unit tests.
    static LinkProfile loopback() { return LinkProfile{0.0, 1e12, 1e12}; }
};

/// Delivers requests directly to a handler while accumulating modeled
/// network time and byte counters. Not thread-safe; each simulated client
/// owns its transport (matching one TLS connection per client).
class MeteredTransport final : public Transport {
public:
    MeteredTransport(RequestHandler& handler, const LinkProfile& link)
        : handler_(handler), link_(link) {}

    Bytes call(BytesView request) override {
        bytes_up_ += request.size();
        const Stopwatch server_watch;
        Bytes response = handler_.handle(request);
        server_seconds_ += server_watch.elapsed_seconds();
        bytes_down_ += response.size();
        network_seconds_ +=
            link_.rtt_seconds +
            static_cast<double>(request.size()) /
                link_.uplink_bytes_per_second +
            static_cast<double>(response.size()) /
                link_.downlink_bytes_per_second;
        ++calls_;
        return response;
    }

    /// Modeled on-the-wire seconds accumulated so far (RTT + transfer;
    /// excludes server processing, reported separately so callers can
    /// charge it only for synchronous operations).
    double network_seconds() const override { return network_seconds_; }

    /// Wall-clock seconds the server spent handling requests.
    double server_seconds() const override { return server_seconds_; }
    std::uint64_t bytes_up() const { return bytes_up_; }
    std::uint64_t bytes_down() const { return bytes_down_; }
    std::uint64_t calls() const { return calls_; }

    void reset_stats() {
        network_seconds_ = 0.0;
        server_seconds_ = 0.0;
        bytes_up_ = bytes_down_ = calls_ = 0;
    }

private:
    RequestHandler& handler_;
    LinkProfile link_;
    double network_seconds_ = 0.0;
    double server_seconds_ = 0.0;
    std::uint64_t bytes_up_ = 0;
    std::uint64_t bytes_down_ = 0;
    std::uint64_t calls_ = 0;
};

}  // namespace mie::net
