#include "net/frame.hpp"

#include "util/crc32c.hpp"

namespace mie::net {

namespace {

void put_le32(std::uint8_t* out, std::uint32_t v) {
    out[0] = static_cast<std::uint8_t>(v);
    out[1] = static_cast<std::uint8_t>(v >> 8);
    out[2] = static_cast<std::uint8_t>(v >> 16);
    out[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t get_le32(const std::uint8_t* in) {
    return static_cast<std::uint32_t>(in[0]) |
           (static_cast<std::uint32_t>(in[1]) << 8) |
           (static_cast<std::uint32_t>(in[2]) << 16) |
           (static_cast<std::uint32_t>(in[3]) << 24);
}

}  // namespace

void encode_frame_header(BytesView payload,
                         std::uint8_t out[kFrameHeaderSize]) {
    put_le32(out, kFrameMagic);
    put_le32(out + 4, static_cast<std::uint32_t>(payload.size()));
    put_le32(out + 8, crc32c(payload));
}

Bytes encode_frame(BytesView payload) {
    Bytes frame(kFrameHeaderSize + payload.size());
    encode_frame_header(payload, frame.data());
    std::copy(payload.begin(), payload.end(),
              frame.begin() + kFrameHeaderSize);
    return frame;
}

FrameHeader parse_frame_header(const std::uint8_t header[kFrameHeaderSize]) {
    if (get_le32(header) != kFrameMagic) {
        throw TransportError(TransportErrorKind::kCorruptFrame,
                             "bad frame magic");
    }
    FrameHeader parsed;
    parsed.length = get_le32(header + 4);
    parsed.crc = get_le32(header + 8);
    if (parsed.length > kMaxFramePayload) {
        throw TransportError(TransportErrorKind::kCorruptFrame,
                             "oversized frame");
    }
    return parsed;
}

void verify_frame_payload(const FrameHeader& header, BytesView payload) {
    if (payload.size() != header.length || crc32c(payload) != header.crc) {
        throw TransportError(TransportErrorKind::kCorruptFrame,
                             "frame checksum mismatch");
    }
}

}  // namespace mie::net
