// Deterministic parallel execution runtime.
//
// The paper's central claim is that MIE offloads the heavy work —
// hierarchical k-means training and indexing — to the cloud server (§V,
// Algorithms 5-9). This module makes that server-side work actually use
// the server's cores, under one load-bearing contract:
//
//   DETERMINISM: every primitive here produces bitwise-identical results
//   at any thread count, including 1. Training a vocabulary tree with one
//   thread or sixteen yields the same centroids, the same node layout and
//   the same leaf numbering, so the paper-reproduction numbers (Tables
//   2-3) stay reproducible on any machine.
//
// How the contract is kept:
//   * parallel_for / parallel_reduce use STATIC chunking: chunk boundaries
//     depend only on the range size and the caller's grain, never on the
//     thread count or scheduling order.
//   * parallel_reduce combines per-chunk partial results in a FIXED
//     left-to-right chunk order (a fixed combination tree), so
//     floating-point reductions associate identically on every run.
//   * Scheduling only decides WHICH thread runs a chunk, never what the
//     chunk computes or how results merge.
//
// Concurrency model: a process-wide work-stealing ThreadPool executes
// helper tasks; the thread that opens a parallel region always
// participates in it (caller-runs), so every region makes progress even
// when the pool is saturated or sized zero — nested regions (a TaskGroup
// task calling parallel_for, a parallel chunk opening another region)
// cannot deadlock. The effective width of a region is
// min(max_threads(), chunks); set_max_threads(1) degrades every primitive
// to plain serial execution on the calling thread.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mie::exec {

/// std::thread::hardware_concurrency, floored at 1.
std::size_t hardware_threads();

/// Caps the width of every parallel region. 0 restores the default
/// (hardware_threads()). Thread-safe; affects regions opened afterwards.
/// Changing the cap never changes results — only how many threads help.
void set_max_threads(std::size_t n);

/// Current effective width cap (never 0).
std::size_t max_threads();

/// Work-stealing thread pool. Each worker owns a deque: its own tasks pop
/// LIFO (cache-warm), thieves steal FIFO from the opposite end. Submission
/// from a worker thread goes to that worker's deque; external submissions
/// round-robin. The pool never runs a task on the submitting thread unless
/// it has no workers at all.
class ThreadPool {
public:
    using Task = std::function<void()>;

    explicit ThreadPool(std::size_t num_workers);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Enqueues a task. With zero workers the task runs inline.
    void submit(Task task);

    std::size_t num_workers() const { return queues_.size(); }

    /// The process-wide pool used by parallel_for / parallel_reduce /
    /// TaskGroup. Sized so that regions up to kMinPoolWidth wide can run
    /// truly concurrently even on narrow machines (the determinism tests
    /// rely on exercising real interleavings everywhere).
    static ThreadPool& global();

    /// Lower bound on global-pool width (workers + caller).
    static constexpr std::size_t kMinPoolWidth = 8;

private:
    struct WorkerQueue {
        std::mutex mutex;
        std::deque<Task> tasks;
    };

    void worker_loop(std::size_t index);
    bool try_pop_or_steal(std::size_t index, Task& out);

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> threads_;
    std::mutex sleep_mutex_;
    std::condition_variable sleep_cv_;
    std::atomic<std::size_t> pending_{0};
    std::atomic<std::size_t> round_robin_{0};
    std::atomic<bool> stop_{false};
};

namespace detail {

/// Shared state of one parallel region: chunks are claimed with an atomic
/// cursor (any claimer order is fine — chunk CONTENT is index-determined),
/// completion is a latch, and the first exception wins and cancels the
/// remaining chunks.
struct RegionState {
    explicit RegionState(std::size_t total) : total_chunks(total) {}

    const std::size_t total_chunks;
    std::atomic<std::size_t> next_chunk{0};
    std::atomic<std::size_t> done_chunks{0};
    std::atomic<bool> cancelled{false};

    std::mutex mutex;
    std::condition_variable cv;
    std::exception_ptr error;  // guarded by mutex

    /// Claims and runs chunks until none remain. `body(chunk)` must not
    /// touch state owned by other chunks.
    template <typename Body>
    void drain(const Body& body) {
        for (;;) {
            const std::size_t chunk =
                next_chunk.fetch_add(1, std::memory_order_relaxed);
            if (chunk >= total_chunks) return;
            if (!cancelled.load(std::memory_order_relaxed)) {
                try {
                    body(chunk);
                } catch (...) {
                    cancelled.store(true, std::memory_order_relaxed);
                    const std::lock_guard lock(mutex);
                    if (!error) error = std::current_exception();
                }
            }
            finish_one();
        }
    }

    void finish_one() {
        if (done_chunks.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            total_chunks) {
            const std::lock_guard lock(mutex);
            cv.notify_all();
        }
    }

    /// Blocks until every chunk finished, then rethrows the first error.
    void wait_all() {
        std::unique_lock lock(mutex);
        cv.wait(lock, [&] {
            return done_chunks.load(std::memory_order_acquire) ==
                   total_chunks;
        });
        if (error) std::rethrow_exception(error);
    }
};

/// Number of chunks for a range under static chunking: depends ONLY on
/// (range, grain) — this is what makes reductions reproducible.
inline std::size_t chunk_count(std::size_t range, std::size_t grain) {
    if (range == 0) return 0;
    if (grain == 0) grain = 1;
    return (range + grain - 1) / grain;
}

/// Runs `body(chunk_index)` for chunk_index in [0, chunks), fanning out to
/// the global pool; the calling thread always participates.
template <typename Body>
void run_region(std::size_t chunks, const Body& body) {
    if (chunks == 0) return;
    if (chunks == 1 || max_threads() == 1) {
        for (std::size_t c = 0; c < chunks; ++c) body(c);
        return;
    }
    ThreadPool& pool = ThreadPool::global();
    const std::size_t helpers =
        std::min({max_threads() - 1, chunks - 1, pool.num_workers()});
    if (helpers == 0) {
        for (std::size_t c = 0; c < chunks; ++c) body(c);
        return;
    }
    auto state = std::make_shared<RegionState>(chunks);
    for (std::size_t h = 0; h < helpers; ++h) {
        // Helpers that arrive after the region drained just return.
        pool.submit([state, body] { state->drain(body); });
    }
    state->drain(body);
    state->wait_all();
}

}  // namespace detail

/// Runs `fn(i)` for every i in [begin, end) across the pool. Iterations
/// must be independent (disjoint writes); results are then trivially
/// thread-count-invariant. `grain` is the number of consecutive indices a
/// chunk processes — pick it so a chunk is >= a few microseconds of work.
template <typename Fn>
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const Fn& fn) {
    if (end <= begin) return;
    const std::size_t range = end - begin;
    if (grain == 0) grain = 1;
    const std::size_t chunks = detail::chunk_count(range, grain);
    detail::run_region(chunks, [&, begin, end, grain](std::size_t chunk) {
        const std::size_t lo = begin + chunk * grain;
        const std::size_t hi = std::min(end, lo + grain);
        for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
}

/// Deterministic parallel reduction. `map(lo, hi)` computes the partial
/// result of index range [lo, hi); partials are combined with
/// `combine(acc, partial)` strictly in chunk order, starting from
/// `identity`. Because chunk boundaries are fixed by (range, grain) and
/// the combination order is fixed, the result is bitwise-identical at any
/// thread count — including for floating-point sums.
template <typename T, typename MapFn, typename CombineFn>
T parallel_reduce(std::size_t begin, std::size_t end, std::size_t grain,
                  T identity, const MapFn& map, const CombineFn& combine) {
    if (end <= begin) return identity;
    const std::size_t range = end - begin;
    if (grain == 0) grain = 1;
    const std::size_t chunks = detail::chunk_count(range, grain);
    // Wrapped so T = bool gets one real slot per chunk; a raw
    // std::vector<bool> packs slots into shared words, and concurrent
    // chunk writes would race on them.
    struct Slot {
        T value;
    };
    std::vector<Slot> partials(chunks);
    detail::run_region(chunks, [&, begin, end, grain](std::size_t chunk) {
        const std::size_t lo = begin + chunk * grain;
        const std::size_t hi = std::min(end, lo + grain);
        partials[chunk].value = map(lo, hi);
    });
    T result = std::move(identity);
    for (std::size_t c = 0; c < chunks; ++c) {
        result = combine(std::move(result), std::move(partials[c].value));
    }
    return result;
}

/// Heterogeneous fan-out: run() submits independent tasks, wait() blocks
/// until all finished and rethrows the first exception. The waiting thread
/// executes tasks the pool has not picked up yet, so a TaskGroup completes
/// (and never leaks a runnable) even on a saturated or zero-width pool —
/// unlike raw std::thread, an exception cannot leave a joinable thread
/// behind. Not reusable after wait(); run() may only be called from the
/// owning thread.
class TaskGroup {
public:
    TaskGroup() = default;
    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    /// Joins outstanding tasks; any stored exception is swallowed (call
    /// wait() explicitly to observe failures).
    ~TaskGroup();

    /// Schedules `fn` to run on the pool (or inline at wait()).
    template <typename Fn>
    void run(Fn&& fn) {
        auto slot = std::make_shared<Slot>(std::forward<Fn>(fn));
        {
            const std::lock_guard lock(state_->mutex);
            state_->slots.push_back(slot);
            state_->total += 1;
        }
        // One pool helper per task, capped by the width budget; excess
        // tasks are picked up by earlier helpers' drain loops or by wait().
        const std::size_t cap =
            std::min(max_threads() - 1, ThreadPool::global().num_workers());
        auto state = state_;
        if (helpers_submitted_ < cap) {
            ++helpers_submitted_;
            ThreadPool::global().submit([state] { drain(*state); });
        }
    }

    /// Runs still-unclaimed tasks inline, waits for in-flight ones, then
    /// rethrows the first exception thrown by any task.
    void wait();

private:
    struct Slot {
        template <typename Fn>
        explicit Slot(Fn&& fn) : task(std::forward<Fn>(fn)) {}
        std::function<void()> task;
        std::atomic<bool> claimed{false};
    };

    struct State {
        std::mutex mutex;
        std::condition_variable cv;
        std::vector<std::shared_ptr<Slot>> slots;  // guarded by mutex
        std::size_t total = 0;                     // guarded by mutex
        std::atomic<std::size_t> done{0};
        std::exception_ptr error;  // guarded by mutex
    };

    /// Claims and runs every unclaimed task currently in the group.
    static void drain(State& state);
    static void run_slot(State& state, Slot& slot);

    std::shared_ptr<State> state_ = std::make_shared<State>();
    std::size_t helpers_submitted_ = 0;
    bool waited_ = false;
};

}  // namespace mie::exec
