#include "exec/exec.hpp"

namespace mie::exec {

namespace {

/// Width cap shared by every parallel region; 0 means "hardware default".
std::atomic<std::size_t> g_max_threads{0};

/// Identifies the pool (if any) the current thread works for, so submit()
/// can prefer the submitting worker's own deque.
thread_local const ThreadPool* t_worker_pool = nullptr;
thread_local std::size_t t_worker_index = 0;

}  // namespace

std::size_t hardware_threads() {
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<std::size_t>(n);
}

void set_max_threads(std::size_t n) {
    g_max_threads.store(n, std::memory_order_relaxed);
}

std::size_t max_threads() {
    const std::size_t n = g_max_threads.load(std::memory_order_relaxed);
    return n == 0 ? hardware_threads() : n;
}

ThreadPool::ThreadPool(std::size_t num_workers) {
    queues_.reserve(num_workers);
    for (std::size_t i = 0; i < num_workers; ++i) {
        queues_.push_back(std::make_unique<WorkerQueue>());
    }
    threads_.reserve(num_workers);
    for (std::size_t i = 0; i < num_workers; ++i) {
        threads_.emplace_back([this, i] { worker_loop(i); });
    }
}

ThreadPool::~ThreadPool() {
    {
        // The lock orders the stop flag against workers entering wait().
        const std::lock_guard lock(sleep_mutex_);
        stop_.store(true, std::memory_order_release);
    }
    sleep_cv_.notify_all();
    for (auto& thread : threads_) thread.join();
    // Orphaned tasks (possible if the process exits mid-region) are run
    // inline so region latches never hang; by construction they are cheap
    // claim-loops that find nothing left to claim.
    for (auto& queue : queues_) {
        for (auto& task : queue->tasks) task();
    }
}

void ThreadPool::submit(Task task) {
    if (queues_.empty()) {
        task();  // width-zero pool: degrade to inline execution
        return;
    }
    std::size_t target;
    if (t_worker_pool == this) {
        target = t_worker_index;
    } else {
        target = round_robin_.fetch_add(1, std::memory_order_relaxed) %
                 queues_.size();
    }
    {
        const std::lock_guard lock(queues_[target]->mutex);
        queues_[target]->tasks.push_back(std::move(task));
    }
    {
        // Increment under the sleep mutex so a worker that just saw
        // pending == 0 cannot miss the wakeup between its check and its
        // wait — the increment serializes against that window.
        const std::lock_guard lock(sleep_mutex_);
        pending_.fetch_add(1, std::memory_order_release);
    }
    sleep_cv_.notify_one();
}

bool ThreadPool::try_pop_or_steal(std::size_t index, Task& out) {
    // Own deque first: LIFO keeps the most recently pushed (cache-warm)
    // task local.
    {
        const std::lock_guard lock(queues_[index]->mutex);
        if (!queues_[index]->tasks.empty()) {
            out = std::move(queues_[index]->tasks.back());
            queues_[index]->tasks.pop_back();
            return true;
        }
    }
    // Steal FIFO from the other end of victims' deques, scanning from the
    // next worker around the ring.
    for (std::size_t k = 1; k < queues_.size(); ++k) {
        const std::size_t victim = (index + k) % queues_.size();
        const std::unique_lock lock(queues_[victim]->mutex,
                                    std::try_to_lock);
        if (!lock.owns_lock() || queues_[victim]->tasks.empty()) continue;
        out = std::move(queues_[victim]->tasks.front());
        queues_[victim]->tasks.pop_front();
        return true;
    }
    return false;
}

void ThreadPool::worker_loop(std::size_t index) {
    t_worker_pool = this;
    t_worker_index = index;
    Task task;
    while (true) {
        if (try_pop_or_steal(index, task)) {
            pending_.fetch_sub(1, std::memory_order_acq_rel);
            task();
            task = nullptr;
            continue;
        }
        std::unique_lock lock(sleep_mutex_);
        if (stop_.load(std::memory_order_acquire)) return;
        if (pending_.load(std::memory_order_acquire) != 0) continue;
        sleep_cv_.wait(lock, [this] {
            return stop_.load(std::memory_order_acquire) ||
                   pending_.load(std::memory_order_acquire) != 0;
        });
        if (stop_.load(std::memory_order_acquire)) return;
    }
}

ThreadPool& ThreadPool::global() {
    // Wider than the machine when the machine is narrow: parallel regions
    // then still interleave for real (determinism and TSan coverage), the
    // extra workers just sleep when idle.
    static ThreadPool pool(std::max(hardware_threads(), kMinPoolWidth) - 1);
    return pool;
}

TaskGroup::~TaskGroup() {
    if (waited_) return;
    try {
        wait();
    } catch (...) {
        // Destructor join: failures were not observed via wait(); drop them.
    }
}

void TaskGroup::run_slot(State& state, Slot& slot) {
    try {
        slot.task();
    } catch (...) {
        const std::lock_guard lock(state.mutex);
        if (!state.error) state.error = std::current_exception();
    }
    slot.task = nullptr;  // release captures eagerly
    std::size_t total;
    {
        const std::lock_guard lock(state.mutex);
        total = state.total;
    }
    if (state.done.fetch_add(1, std::memory_order_acq_rel) + 1 == total) {
        const std::lock_guard lock(state.mutex);
        state.cv.notify_all();
    }
}

void TaskGroup::drain(State& state) {
    for (std::size_t i = 0;; ++i) {
        std::shared_ptr<Slot> slot;
        {
            const std::lock_guard lock(state.mutex);
            if (i >= state.slots.size()) return;
            slot = state.slots[i];
        }
        if (!slot->claimed.exchange(true, std::memory_order_acq_rel)) {
            run_slot(state, *slot);
        }
    }
}

void TaskGroup::wait() {
    waited_ = true;
    drain(*state_);
    std::unique_lock lock(state_->mutex);
    state_->cv.wait(lock, [&] {
        return state_->done.load(std::memory_order_acquire) ==
               state_->total;
    });
    if (state_->error) std::rethrow_exception(state_->error);
}

}  // namespace mie::exec
