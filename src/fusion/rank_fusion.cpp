#include "fusion/rank_fusion.hpp"

#include <cmath>
#include <map>

namespace mie::fusion {

using index::DocId;
using index::ScoredDoc;

std::vector<ScoredDoc> log_isr_fusion(std::span<const RankedList> lists,
                                      std::size_t top_k) {
    std::map<DocId, double> isr;
    std::map<DocId, int> appearances;
    for (const RankedList& list : lists) {
        for (std::size_t rank = 0; rank < list.size(); ++rank) {
            const double r = static_cast<double>(rank + 1);
            isr[list[rank].doc] += 1.0 / (r * r);
            ++appearances[list[rank].doc];
        }
    }
    std::map<DocId, double> scores;
    for (const auto& [doc, sum] : isr) {
        scores[doc] = std::log(1.0 + appearances[doc]) * sum;
    }
    return index::top_k_of(std::move(scores), top_k);
}

std::vector<ScoredDoc> reciprocal_rank_fusion(
    std::span<const RankedList> lists, std::size_t top_k, double k0) {
    std::map<DocId, double> scores;
    for (const RankedList& list : lists) {
        for (std::size_t rank = 0; rank < list.size(); ++rank) {
            scores[list[rank].doc] +=
                1.0 / (k0 + static_cast<double>(rank + 1));
        }
    }
    return index::top_k_of(std::move(scores), top_k);
}

std::vector<ScoredDoc> comb_sum_fusion(std::span<const RankedList> lists,
                                       std::size_t top_k) {
    std::map<DocId, double> scores;
    for (const RankedList& list : lists) {
        if (list.empty()) continue;
        double lo = list.front().score, hi = list.front().score;
        for (const ScoredDoc& item : list) {
            lo = std::min(lo, item.score);
            hi = std::max(hi, item.score);
        }
        const double range = hi - lo;
        for (const ScoredDoc& item : list) {
            const double normalized =
                range == 0.0 ? 1.0 : (item.score - lo) / range;
            scores[item.doc] += normalized;
        }
    }
    return index::top_k_of(std::move(scores), top_k);
}

}  // namespace mie::fusion
