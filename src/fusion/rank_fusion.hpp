// Multimodal late rank fusion.
//
// MIE searches each modality separately and merges the per-modality ranked
// lists into the final multimodal result. The paper uses the logarithmic
// inverse square rank (logISR) fusion of Mourão et al. (TREC'13 / CMIG'14);
// reciprocal-rank fusion and CombSUM are provided as alternatives (used by
// the fusion ablation bench).
#pragma once

#include <span>
#include <vector>

#include "index/scoring.hpp"

namespace mie::fusion {

using RankedList = std::vector<index::ScoredDoc>;

/// Logarithmic inverse square rank fusion:
///   score(d) = log(1 + |lists containing d|) * Σ 1 / rank(d)^2
/// with ranks starting at 1 in each modality list.
std::vector<index::ScoredDoc> log_isr_fusion(
    std::span<const RankedList> lists, std::size_t top_k);

/// Reciprocal rank fusion: score(d) = Σ 1 / (k0 + rank(d)).
std::vector<index::ScoredDoc> reciprocal_rank_fusion(
    std::span<const RankedList> lists, std::size_t top_k, double k0 = 60.0);

/// CombSUM over min-max normalized scores.
std::vector<index::ScoredDoc> comb_sum_fusion(
    std::span<const RankedList> lists, std::size_t top_k);

}  // namespace mie::fusion
