// Portable AES forward permutation and CTR keystream kernels (FIPS 197 /
// SP 800-38A). These are the reference implementations every accelerated
// variant must match bitwise; the block cipher body mirrors the original
// table-based mie::crypto::Aes, operating on the byte-order key schedule
// the dispatch layer standardizes on.
#include <cstring>

#include "kernels/kernels_internal.hpp"

namespace mie::kernels::detail {

namespace {

constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

std::uint8_t xtime(std::uint8_t x) {
    return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

// Big-endian 64-bit increment of counter[8..15]; never carries into the
// nonce half (SP 800-38A 64-bit counter-block convention).
void increment_ctr64(std::uint8_t counter[16]) {
    for (int i = 15; i >= 8; --i) {
        if (++counter[static_cast<std::size_t>(i)] != 0) break;
    }
}

// Big-endian 128-bit increment of the whole block (DRBG convention).
void increment_ctr128(std::uint8_t counter[16]) {
    for (int i = 15; i >= 0; --i) {
        if (++counter[static_cast<std::size_t>(i)] != 0) break;
    }
}

}  // namespace

std::uint64_t load_be64(const std::uint8_t* p) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
    return v;
}

void store_be64(std::uint8_t* p, std::uint64_t v) {
    for (int i = 7; i >= 0; --i) {
        p[i] = static_cast<std::uint8_t>(v);
        v >>= 8;
    }
}

void aes_encrypt_block_scalar(const std::uint8_t* round_keys, int rounds,
                              std::uint8_t* block) {
    // State is column-major: s[r + 4c], which is exactly the input byte
    // order (FIPS 197 §3.4), so the round-key bytes XOR in directly.
    std::uint8_t s[16];
    std::memcpy(s, block, 16);

    auto add_round_key = [&](int round) {
        const std::uint8_t* rk = round_keys + 16 * round;
        for (int i = 0; i < 16; ++i) s[i] ^= rk[i];
    };

    auto sub_bytes = [&] {
        for (auto& b : s) b = kSbox[b];
    };

    auto shift_rows = [&] {
        std::uint8_t t[16];
        for (int c = 0; c < 4; ++c) {
            for (int r = 0; r < 4; ++r) {
                t[4 * c + r] = s[4 * ((c + r) % 4) + r];
            }
        }
        std::memcpy(s, t, 16);
    };

    auto mix_columns = [&] {
        for (int c = 0; c < 4; ++c) {
            std::uint8_t* col = s + 4 * c;
            const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2],
                               a3 = col[3];
            col[0] = static_cast<std::uint8_t>(xtime(a0) ^ xtime(a1) ^ a1 ^
                                               a2 ^ a3);
            col[1] = static_cast<std::uint8_t>(a0 ^ xtime(a1) ^ xtime(a2) ^
                                               a2 ^ a3);
            col[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ xtime(a2) ^
                                               xtime(a3) ^ a3);
            col[3] = static_cast<std::uint8_t>(xtime(a0) ^ a0 ^ a1 ^ a2 ^
                                               xtime(a3));
        }
    };

    add_round_key(0);
    for (int round = 1; round < rounds; ++round) {
        sub_bytes();
        shift_rows();
        mix_columns();
        add_round_key(round);
    }
    sub_bytes();
    shift_rows();
    add_round_key(rounds);

    std::memcpy(block, s, 16);
}

void aes_ctr64_xor_scalar(const std::uint8_t* round_keys, int rounds,
                          std::uint8_t counter[16], std::uint8_t* data,
                          std::size_t len) {
    std::size_t offset = 0;
    while (offset < len) {
        std::uint8_t keystream[16];
        std::memcpy(keystream, counter, 16);
        aes_encrypt_block_scalar(round_keys, rounds, keystream);
        const std::size_t take =
            len - offset < 16 ? len - offset : std::size_t{16};
        if (take == 16) {
            // Word-wise XOR of a full block.
            std::uint64_t d0, d1, k0, k1;
            std::memcpy(&d0, data + offset, 8);
            std::memcpy(&d1, data + offset + 8, 8);
            std::memcpy(&k0, keystream, 8);
            std::memcpy(&k1, keystream + 8, 8);
            d0 ^= k0;
            d1 ^= k1;
            std::memcpy(data + offset, &d0, 8);
            std::memcpy(data + offset + 8, &d1, 8);
        } else {
            for (std::size_t i = 0; i < take; ++i) {
                data[offset + i] ^= keystream[i];
            }
        }
        offset += take;
        increment_ctr64(counter);
    }
}

void aes_ctr128_keystream_scalar(const std::uint8_t* round_keys, int rounds,
                                 std::uint8_t counter[16], std::uint8_t* out,
                                 std::size_t blocks) {
    for (std::size_t b = 0; b < blocks; ++b) {
        increment_ctr128(counter);
        std::memcpy(out + 16 * b, counter, 16);
        aes_encrypt_block_scalar(round_keys, rounds, out + 16 * b);
    }
}

}  // namespace mie::kernels::detail
