// CRC-32C (Castagnoli) kernels: portable slice-by-8 and the SSE4.2 `crc32`
// instruction (~10 bytes/cycle). Both implementations moved here from
// util/crc32c.cpp so the choice goes through the kernel dispatch ladder
// (and MIE_KERNEL_LEVEL=scalar forces the table walk in CI).
#include <array>
#include <cstring>

#include "kernels/kernels_internal.hpp"

#ifdef MIE_KERNELS_X86
#include <nmmintrin.h>
#endif

namespace mie::kernels::detail {

namespace {

constexpr std::uint32_t kPolynomial = 0x82F63B78u;

// Slice-by-8: table[0] is the classic byte-at-a-time table; table[k]
// advances a byte through k additional zero bytes, letting the loop fold
// eight input bytes per iteration instead of one.
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_tables() {
    std::array<std::array<std::uint32_t, 256>, 8> tables{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit) {
            c = (c & 1u) ? (kPolynomial ^ (c >> 1)) : (c >> 1);
        }
        tables[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = tables[0][i];
        for (std::size_t k = 1; k < 8; ++k) {
            c = tables[0][c & 0xFFu] ^ (c >> 8);
            tables[k][i] = c;
        }
    }
    return tables;
}

const auto& tables() {
    static constexpr auto kTables = make_tables();
    return kTables;
}

}  // namespace

std::uint32_t crc32c_update_scalar(std::uint32_t state,
                                   const std::uint8_t* data,
                                   std::size_t len) {
    const auto& t = tables();
    const std::uint8_t* p = data;
    std::size_t n = len;
    while (n >= 8) {
        std::uint32_t low;
        std::uint32_t high;
        std::memcpy(&low, p, 4);
        std::memcpy(&high, p + 4, 4);
        low ^= state;
        state = t[7][low & 0xFFu] ^ t[6][(low >> 8) & 0xFFu] ^
                t[5][(low >> 16) & 0xFFu] ^ t[4][low >> 24] ^
                t[3][high & 0xFFu] ^ t[2][(high >> 8) & 0xFFu] ^
                t[1][(high >> 16) & 0xFFu] ^ t[0][high >> 24];
        p += 8;
        n -= 8;
    }
    while (n-- > 0) {
        state = t[0][(state ^ *p++) & 0xFFu] ^ (state >> 8);
    }
    return state;
}

#ifdef MIE_KERNELS_X86

__attribute__((target("sse4.2"))) std::uint32_t crc32c_update_sse42(
    std::uint32_t state, const std::uint8_t* data, std::size_t len) {
    const std::uint8_t* p = data;
    std::size_t n = len;
    std::uint64_t crc = state;
    while (n >= 8) {
        std::uint64_t chunk;
        std::memcpy(&chunk, p, 8);
        crc = _mm_crc32_u64(crc, chunk);
        p += 8;
        n -= 8;
    }
    std::uint32_t crc32 = static_cast<std::uint32_t>(crc);
    while (n-- > 0) crc32 = _mm_crc32_u8(crc32, *p++);
    return crc32;
}

#endif  // MIE_KERNELS_X86

}  // namespace mie::kernels::detail
