// Runtime-dispatched SIMD/hardware kernels for the hot paths that dominate
// every figure in the paper: AES-CTR encryption (Figs. 2-3 Encrypt bars,
// MSSE index values), Euclidean distance (k-means training, vocab-tree
// build, linear_search), the Dense-DPE projection dot product, and CRC-32C
// (net/frame wire framing and the store WAL).
//
// Design contract — determinism first:
//   * A kernel level NEVER changes results, only speed. Integer kernels
//     (AES, CTR, CRC) are trivially bitwise-identical at every level. The
//     floating-point kernels (l2_squared, dot) pin a single canonical
//     summation order — 4-wide blocked partials over doubles, reduced as
//     (acc0 + acc1) + (acc2 + acc3) — which the scalar fallback and every
//     SIMD variant implement with the same elementwise IEEE operations
//     (cvt, sub, mul, add; no FMA contraction). This preserves the
//     bitwise-determinism guarantees of the exec runtime (DESIGN.md §7) at
//     every kernel level and thread count.
//   * Dispatch is resolved once per process from cpuid, clamped by the
//     env override MIE_KERNEL_LEVEL=scalar|sse2|avx2|native (used by tests
//     and CI to keep fallback paths exercised).
//
// The library is dependency-free (raw pointers only) so util/, crypto/,
// features/, and dpe/ can all link against it. See DESIGN.md §10 for the
// dispatch ladder and how to add a new kernel.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mie::kernels {

/// Dispatch ladder. Each level enables the instruction sets of the levels
/// below it; `kNative` means "everything cpuid reports".
///   scalar : portable C++ only
///   sse2   : + SSE2 (2-wide double SIMD for l2/dot)
///   avx2   : + SSE4.2 (hw CRC-32C), AVX2+FMA (4-wide double SIMD)
///   native : + AES-NI, PCLMUL (hardware AES block/CTR pipeline)
enum class Level : int { kScalar = 0, kSse2 = 1, kAvx2 = 2, kNative = 3 };

inline constexpr int kNumLevels = 4;

/// CPU capabilities detected at runtime (all false on non-x86-64).
struct CpuFeatures {
    bool sse2 = false;
    bool sse42 = false;
    bool avx2 = false;
    bool fma = false;
    bool aesni = false;
    bool pclmul = false;
};

/// Cached cpuid probe.
const CpuFeatures& cpu_features();

/// Highest ladder level this CPU fully supports.
Level max_level();

/// Parses "scalar" / "sse2" / "avx2" / "native" into `*out`; returns false
/// (and leaves `*out` untouched) for anything else, including nullptr.
bool parse_level(const char* text, Level* out);

/// Resolves an MIE_KERNEL_LEVEL-style override against the hardware:
/// min(parsed level, max_level()). nullptr or an unparseable string
/// resolves to max_level() (i.e. native). Pure function, exposed for
/// tests; `active_level()` is this applied to the real environment.
Level resolve_level(const char* env_text);

/// The level this process dispatches at: resolve_level(getenv(
/// "MIE_KERNEL_LEVEL")), computed once and cached.
Level active_level();

/// Human-readable level name ("scalar", "sse2", "avx2", "native").
const char* level_name(Level level);

/// One dispatch table per level. Function pointers are chosen as the best
/// implementation whose instruction set is enabled at that level AND
/// present on this CPU, so calling through any table is always safe.
struct KernelTable {
    /// AES forward permutation on one 16-byte block, in place.
    /// `round_keys` is the expanded schedule in byte (wire) order,
    /// 16 * (rounds + 1) bytes; rounds is 10 (AES-128) or 14 (AES-256).
    void (*aes_encrypt_block)(const std::uint8_t* round_keys, int rounds,
                              std::uint8_t* block);

    /// CTR-mode XOR with SP 800-38A semantics as used by crypto::AesCtr:
    /// keystream block i = E(counter), then the big-endian 64-bit word in
    /// counter[8..15] is incremented (wrapping; bytes 0..7 never carry).
    /// Processes `len` bytes of `data` (final block may be partial) and
    /// leaves `counter` advanced past every consumed block.
    void (*aes_ctr64_xor)(const std::uint8_t* round_keys, int rounds,
                          std::uint8_t counter[16], std::uint8_t* data,
                          std::size_t len);

    /// DRBG-style keystream: for each of `blocks` output blocks the full
    /// 128-bit big-endian counter is incremented first, then encrypted
    /// into `out` (so out block i = E(counter + i + 1)); `counter` is left
    /// at its final value.
    void (*aes_ctr128_keystream)(const std::uint8_t* round_keys, int rounds,
                                 std::uint8_t counter[16], std::uint8_t* out,
                                 std::size_t blocks);

    /// Squared L2 distance between float vectors in the canonical 4-wide
    /// blocked order (see file header). n == 0 returns 0.0.
    double (*l2_squared)(const float* a, const float* b, std::size_t n);

    /// Dot product of float vectors, same canonical order as l2_squared.
    double (*dot)(const float* a, const float* b, std::size_t n);

    /// Incremental CRC-32C (Castagnoli) update; same contract as
    /// mie::crc32c_update.
    std::uint32_t (*crc32c_update)(std::uint32_t state,
                                   const std::uint8_t* data,
                                   std::size_t len);
};

/// Dispatch table for the active level (cached).
const KernelTable& table();

/// Dispatch table for an explicit level, clamped to max_level(). Used by
/// the equivalence tests and bench/micro_kernels to pin a level without
/// touching global state.
const KernelTable& table_for(Level level);

}  // namespace mie::kernels
