// Euclidean (squared-L2) distance and dot-product kernels over float
// vectors, accumulated in doubles.
//
// Determinism contract: all variants compute the SAME canonical 4-wide
// blocked summation — lane j accumulates elements i+j (i stepping by 4) as
// acc_j += op(a, b) with plain IEEE double sub/mul/add (no FMA: none of
// these functions enables the FMA ISA, so the compiler cannot contract
// mul+add), the 0..3 leftover elements fold into lanes 0..2 in order, and
// the final reduction is (acc0 + acc1) + (acc2 + acc3). Every SIMD variant
// performs the identical elementwise IEEE operations per lane, so results
// are bitwise-equal across scalar/SSE2/AVX2 at any vector length.
#include "kernels/kernels_internal.hpp"

#ifdef MIE_KERNELS_X86
#include <immintrin.h>
#endif

namespace mie::kernels::detail {

namespace {

// Folds the tail (n4..n) into the lane accumulators and reduces in the
// canonical order. Shared by every variant so the order cannot drift.
template <bool kSquared>
double finish_lanes(double acc[4], const float* a, const float* b,
                    std::size_t n4, std::size_t n) {
    for (std::size_t i = n4; i < n; ++i) {
        const double x = static_cast<double>(a[i]);
        const double y = static_cast<double>(b[i]);
        if constexpr (kSquared) {
            const double d = x - y;
            acc[i - n4] += d * d;
        } else {
            acc[i - n4] += x * y;
        }
    }
    return (acc[0] + acc[1]) + (acc[2] + acc[3]);
}

}  // namespace

double l2_squared_scalar(const float* a, const float* b, std::size_t n) {
    double acc[4] = {0.0, 0.0, 0.0, 0.0};
    const std::size_t n4 = n & ~std::size_t{3};
    for (std::size_t i = 0; i < n4; i += 4) {
        for (std::size_t j = 0; j < 4; ++j) {
            const double d = static_cast<double>(a[i + j]) -
                             static_cast<double>(b[i + j]);
            acc[j] += d * d;
        }
    }
    return finish_lanes<true>(acc, a, b, n4, n);
}

double dot_scalar(const float* a, const float* b, std::size_t n) {
    double acc[4] = {0.0, 0.0, 0.0, 0.0};
    const std::size_t n4 = n & ~std::size_t{3};
    for (std::size_t i = 0; i < n4; i += 4) {
        for (std::size_t j = 0; j < 4; ++j) {
            acc[j] += static_cast<double>(a[i + j]) *
                      static_cast<double>(b[i + j]);
        }
    }
    return finish_lanes<false>(acc, a, b, n4, n);
}

#ifdef MIE_KERNELS_X86

__attribute__((target("sse2"))) double l2_squared_sse2(const float* a,
                                                       const float* b,
                                                       std::size_t n) {
    __m128d acc01 = _mm_setzero_pd();  // lanes 0,1
    __m128d acc23 = _mm_setzero_pd();  // lanes 2,3
    const std::size_t n4 = n & ~std::size_t{3};
    for (std::size_t i = 0; i < n4; i += 4) {
        const __m128 fa = _mm_loadu_ps(a + i);
        const __m128 fb = _mm_loadu_ps(b + i);
        const __m128d dlo =
            _mm_sub_pd(_mm_cvtps_pd(fa), _mm_cvtps_pd(fb));
        const __m128d dhi =
            _mm_sub_pd(_mm_cvtps_pd(_mm_movehl_ps(fa, fa)),
                       _mm_cvtps_pd(_mm_movehl_ps(fb, fb)));
        acc01 = _mm_add_pd(acc01, _mm_mul_pd(dlo, dlo));
        acc23 = _mm_add_pd(acc23, _mm_mul_pd(dhi, dhi));
    }
    double acc[4];
    _mm_storeu_pd(acc, acc01);
    _mm_storeu_pd(acc + 2, acc23);
    return finish_lanes<true>(acc, a, b, n4, n);
}

__attribute__((target("sse2"))) double dot_sse2(const float* a,
                                                const float* b,
                                                std::size_t n) {
    __m128d acc01 = _mm_setzero_pd();
    __m128d acc23 = _mm_setzero_pd();
    const std::size_t n4 = n & ~std::size_t{3};
    for (std::size_t i = 0; i < n4; i += 4) {
        const __m128 fa = _mm_loadu_ps(a + i);
        const __m128 fb = _mm_loadu_ps(b + i);
        acc01 = _mm_add_pd(
            acc01, _mm_mul_pd(_mm_cvtps_pd(fa), _mm_cvtps_pd(fb)));
        acc23 = _mm_add_pd(
            acc23, _mm_mul_pd(_mm_cvtps_pd(_mm_movehl_ps(fa, fa)),
                              _mm_cvtps_pd(_mm_movehl_ps(fb, fb))));
    }
    double acc[4];
    _mm_storeu_pd(acc, acc01);
    _mm_storeu_pd(acc + 2, acc23);
    return finish_lanes<false>(acc, a, b, n4, n);
}

__attribute__((target("avx2"))) double l2_squared_avx2(const float* a,
                                                       const float* b,
                                                       std::size_t n) {
    __m256d vacc = _mm256_setzero_pd();
    const std::size_t n4 = n & ~std::size_t{3};
    for (std::size_t i = 0; i < n4; i += 4) {
        const __m256d va = _mm256_cvtps_pd(_mm_loadu_ps(a + i));
        const __m256d vb = _mm256_cvtps_pd(_mm_loadu_ps(b + i));
        const __m256d d = _mm256_sub_pd(va, vb);
        vacc = _mm256_add_pd(vacc, _mm256_mul_pd(d, d));
    }
    double acc[4];
    _mm256_storeu_pd(acc, vacc);
    return finish_lanes<true>(acc, a, b, n4, n);
}

__attribute__((target("avx2"))) double dot_avx2(const float* a,
                                                const float* b,
                                                std::size_t n) {
    __m256d vacc = _mm256_setzero_pd();
    const std::size_t n4 = n & ~std::size_t{3};
    for (std::size_t i = 0; i < n4; i += 4) {
        const __m256d va = _mm256_cvtps_pd(_mm_loadu_ps(a + i));
        const __m256d vb = _mm256_cvtps_pd(_mm_loadu_ps(b + i));
        vacc = _mm256_add_pd(vacc, _mm256_mul_pd(va, vb));
    }
    double acc[4];
    _mm256_storeu_pd(acc, vacc);
    return finish_lanes<false>(acc, a, b, n4, n);
}

#endif  // MIE_KERNELS_X86

}  // namespace mie::kernels::detail
