// Kernel dispatch: cpuid feature detection, the scalar<sse2<avx2<native
// ladder, MIE_KERNEL_LEVEL resolution, and per-level function tables.
#include "kernels/kernels.hpp"

#include <cstdlib>
#include <cstring>

#include "kernels/kernels_internal.hpp"

namespace mie::kernels {

namespace {

CpuFeatures detect() {
    CpuFeatures f;
#ifdef MIE_KERNELS_X86
    f.sse2 = __builtin_cpu_supports("sse2");
    f.sse42 = __builtin_cpu_supports("sse4.2");
    f.avx2 = __builtin_cpu_supports("avx2");
    f.fma = __builtin_cpu_supports("fma");
    f.aesni = __builtin_cpu_supports("aes");
    f.pclmul = __builtin_cpu_supports("pclmul");
#endif
    return f;
}

// The instruction sets a ladder level is ALLOWED to use, intersected with
// what the CPU actually has. `native` is simply "everything detected".
CpuFeatures caps_for(Level level) {
    const CpuFeatures& hw = cpu_features();
    CpuFeatures caps;  // scalar: nothing
    switch (level) {
        case Level::kScalar:
            break;
        case Level::kSse2:
            caps.sse2 = hw.sse2;
            break;
        case Level::kAvx2:
            caps.sse2 = hw.sse2;
            caps.sse42 = hw.sse42;
            caps.avx2 = hw.avx2;
            caps.fma = hw.fma;
            break;
        case Level::kNative:
            caps = hw;
            break;
    }
    return caps;
}

KernelTable make_table(Level level) {
    const CpuFeatures caps = caps_for(level);
    KernelTable t;
    t.aes_encrypt_block = detail::aes_encrypt_block_scalar;
    t.aes_ctr64_xor = detail::aes_ctr64_xor_scalar;
    t.aes_ctr128_keystream = detail::aes_ctr128_keystream_scalar;
    t.l2_squared = detail::l2_squared_scalar;
    t.dot = detail::dot_scalar;
    t.crc32c_update = detail::crc32c_update_scalar;
#ifdef MIE_KERNELS_X86
    if (caps.aesni) {
        t.aes_encrypt_block = detail::aes_encrypt_block_aesni;
        t.aes_ctr64_xor = detail::aes_ctr64_xor_aesni;
        t.aes_ctr128_keystream = detail::aes_ctr128_keystream_aesni;
    }
    if (caps.avx2) {
        t.l2_squared = detail::l2_squared_avx2;
        t.dot = detail::dot_avx2;
    } else if (caps.sse2) {
        t.l2_squared = detail::l2_squared_sse2;
        t.dot = detail::dot_sse2;
    }
    if (caps.sse42) {
        t.crc32c_update = detail::crc32c_update_sse42;
    }
#endif
    return t;
}

struct Tables {
    KernelTable per_level[kNumLevels];
    Tables() {
        for (int i = 0; i < kNumLevels; ++i) {
            per_level[i] = make_table(static_cast<Level>(i));
        }
    }
};

const Tables& tables() {
    static const Tables t;
    return t;
}

}  // namespace

const CpuFeatures& cpu_features() {
    static const CpuFeatures f = detect();
    return f;
}

Level max_level() {
    const CpuFeatures& f = cpu_features();
    if (f.aesni || f.pclmul) return Level::kNative;
    if (f.avx2 || f.sse42) return Level::kAvx2;
    if (f.sse2) return Level::kSse2;
    return Level::kScalar;
}

bool parse_level(const char* text, Level* out) {
    if (text == nullptr) return false;
    if (std::strcmp(text, "scalar") == 0) {
        *out = Level::kScalar;
    } else if (std::strcmp(text, "sse2") == 0) {
        *out = Level::kSse2;
    } else if (std::strcmp(text, "avx2") == 0) {
        *out = Level::kAvx2;
    } else if (std::strcmp(text, "native") == 0) {
        *out = Level::kNative;
    } else {
        return false;
    }
    return true;
}

Level resolve_level(const char* env_text) {
    Level parsed = Level::kNative;
    parse_level(env_text, &parsed);  // unparseable/absent -> native
    return parsed < max_level() ? parsed : max_level();
}

Level active_level() {
    static const Level level = resolve_level(std::getenv("MIE_KERNEL_LEVEL"));
    return level;
}

const char* level_name(Level level) {
    switch (level) {
        case Level::kScalar: return "scalar";
        case Level::kSse2: return "sse2";
        case Level::kAvx2: return "avx2";
        case Level::kNative: return "native";
    }
    return "?";
}

const KernelTable& table_for(Level level) {
    const Level max = max_level();
    const Level clamped = level < max ? level : max;
    return tables().per_level[static_cast<int>(clamped)];
}

const KernelTable& table() {
    static const KernelTable& t = table_for(active_level());
    return t;
}

}  // namespace mie::kernels
