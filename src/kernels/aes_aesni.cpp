// AES-NI kernels: single-block encrypt and CTR keystreams with an 8-block
// software pipeline (aesenc latency on modern cores is ~3-4 cycles with
// 1/cycle throughput, so 8 independent blocks keep the unit saturated).
// Outputs are bitwise-identical to the scalar kernels; only the counter
// arithmetic is lifted from byte-carries to 64-bit adds (same wrap
// semantics: the CTR64 variant never carries into the nonce half).
#include "kernels/kernels_internal.hpp"

#ifdef MIE_KERNELS_X86

#include <immintrin.h>

#include <cstring>

namespace mie::kernels::detail {

namespace {

constexpr int kPipeline = 8;

__attribute__((target("aes,sse2"))) inline __m128i encrypt_one(
    const __m128i* round_key, int rounds, __m128i block) {
    block = _mm_xor_si128(block, round_key[0]);
    for (int r = 1; r < rounds; ++r) {
        block = _mm_aesenc_si128(block, round_key[r]);
    }
    return _mm_aesenclast_si128(block, round_key[rounds]);
}

__attribute__((target("aes,sse2"))) inline void load_schedule(
    const std::uint8_t* round_keys, int rounds, __m128i* round_key) {
    for (int r = 0; r <= rounds; ++r) {
        round_key[r] = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(round_keys + 16 * r));
    }
}

}  // namespace

__attribute__((target("aes,sse2"))) void aes_encrypt_block_aesni(
    const std::uint8_t* round_keys, int rounds, std::uint8_t* block) {
    __m128i round_key[15];
    load_schedule(round_keys, rounds, round_key);
    const __m128i s = encrypt_one(
        round_key, rounds,
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(block)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(block), s);
}

__attribute__((target("aes,sse2"))) void aes_ctr64_xor_aesni(
    const std::uint8_t* round_keys, int rounds, std::uint8_t counter[16],
    std::uint8_t* data, std::size_t len) {
    if (len == 0) return;
    __m128i round_key[15];
    load_schedule(round_keys, rounds, round_key);

    // counter[0..7] is the fixed nonce half; counter[8..15] a wrapping
    // big-endian 64-bit block counter.
    std::uint8_t block_bytes[16];
    std::memcpy(block_bytes, counter, 8);
    std::uint64_t c = load_be64(counter + 8);

    std::size_t offset = 0;
    std::size_t full_blocks = len / 16;
    while (full_blocks >= kPipeline) {
        __m128i s[kPipeline];
        for (int j = 0; j < kPipeline; ++j) {
            store_be64(block_bytes + 8, c + static_cast<std::uint64_t>(j));
            s[j] = _mm_xor_si128(
                _mm_loadu_si128(reinterpret_cast<__m128i*>(block_bytes)),
                round_key[0]);
        }
        for (int r = 1; r < rounds; ++r) {
            for (int j = 0; j < kPipeline; ++j) {
                s[j] = _mm_aesenc_si128(s[j], round_key[r]);
            }
        }
        for (int j = 0; j < kPipeline; ++j) {
            s[j] = _mm_aesenclast_si128(s[j], round_key[rounds]);
        }
        for (int j = 0; j < kPipeline; ++j) {
            __m128i* p = reinterpret_cast<__m128i*>(data + offset + 16 * j);
            _mm_storeu_si128(p, _mm_xor_si128(_mm_loadu_si128(p), s[j]));
        }
        c += kPipeline;
        offset += 16 * kPipeline;
        full_blocks -= kPipeline;
    }
    while (full_blocks > 0) {
        store_be64(block_bytes + 8, c);
        const __m128i s = encrypt_one(
            round_key, rounds,
            _mm_loadu_si128(reinterpret_cast<__m128i*>(block_bytes)));
        __m128i* p = reinterpret_cast<__m128i*>(data + offset);
        _mm_storeu_si128(p, _mm_xor_si128(_mm_loadu_si128(p), s));
        ++c;
        offset += 16;
        --full_blocks;
    }
    if (offset < len) {
        store_be64(block_bytes + 8, c);
        __m128i s = encrypt_one(
            round_key, rounds,
            _mm_loadu_si128(reinterpret_cast<__m128i*>(block_bytes)));
        std::uint8_t keystream[16];
        _mm_storeu_si128(reinterpret_cast<__m128i*>(keystream), s);
        for (std::size_t i = 0; offset + i < len; ++i) {
            data[offset + i] ^= keystream[i];
        }
        ++c;  // scalar path increments past a partial final block too
    }
    store_be64(counter + 8, c);
}

__attribute__((target("aes,sse2"))) void aes_ctr128_keystream_aesni(
    const std::uint8_t* round_keys, int rounds, std::uint8_t counter[16],
    std::uint8_t* out, std::size_t blocks) {
    if (blocks == 0) return;
    __m128i round_key[15];
    load_schedule(round_keys, rounds, round_key);

    std::uint64_t hi = load_be64(counter);
    std::uint64_t lo = load_be64(counter + 8);
    std::uint8_t block_bytes[16];

    std::size_t b = 0;
    while (blocks - b >= kPipeline) {
        __m128i s[kPipeline];
        for (int j = 0; j < kPipeline; ++j) {
            if (++lo == 0) ++hi;  // increment-then-encrypt, 128-bit carry
            store_be64(block_bytes, hi);
            store_be64(block_bytes + 8, lo);
            s[j] = _mm_xor_si128(
                _mm_loadu_si128(reinterpret_cast<__m128i*>(block_bytes)),
                round_key[0]);
        }
        for (int r = 1; r < rounds; ++r) {
            for (int j = 0; j < kPipeline; ++j) {
                s[j] = _mm_aesenc_si128(s[j], round_key[r]);
            }
        }
        for (int j = 0; j < kPipeline; ++j) {
            s[j] = _mm_aesenclast_si128(s[j], round_key[rounds]);
            _mm_storeu_si128(
                reinterpret_cast<__m128i*>(out + 16 * (b + static_cast<std::size_t>(j))),
                s[j]);
        }
        b += kPipeline;
    }
    for (; b < blocks; ++b) {
        if (++lo == 0) ++hi;
        store_be64(block_bytes, hi);
        store_be64(block_bytes + 8, lo);
        const __m128i s = encrypt_one(
            round_key, rounds,
            _mm_loadu_si128(reinterpret_cast<__m128i*>(block_bytes)));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * b), s);
    }
    store_be64(counter, hi);
    store_be64(counter + 8, lo);
}

}  // namespace mie::kernels::detail

#endif  // MIE_KERNELS_X86
