// Per-implementation kernel entry points shared between the dispatch
// table (dispatch.cpp) and the implementation TUs. Not installed API —
// callers go through kernels::table().
#pragma once

#include <cstddef>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#define MIE_KERNELS_X86 1
#endif

namespace mie::kernels::detail {

// --- scalar reference implementations (every platform) ------------------
void aes_encrypt_block_scalar(const std::uint8_t* round_keys, int rounds,
                              std::uint8_t* block);
void aes_ctr64_xor_scalar(const std::uint8_t* round_keys, int rounds,
                          std::uint8_t counter[16], std::uint8_t* data,
                          std::size_t len);
void aes_ctr128_keystream_scalar(const std::uint8_t* round_keys, int rounds,
                                 std::uint8_t counter[16], std::uint8_t* out,
                                 std::size_t blocks);
double l2_squared_scalar(const float* a, const float* b, std::size_t n);
double dot_scalar(const float* a, const float* b, std::size_t n);
std::uint32_t crc32c_update_scalar(std::uint32_t state,
                                   const std::uint8_t* data, std::size_t len);

// Shared helpers for the CTR kernels' partial-tail / carry handling.
std::uint64_t load_be64(const std::uint8_t* p);
void store_be64(std::uint8_t* p, std::uint64_t v);

#ifdef MIE_KERNELS_X86
// --- x86-64 accelerated implementations ---------------------------------
void aes_encrypt_block_aesni(const std::uint8_t* round_keys, int rounds,
                             std::uint8_t* block);
void aes_ctr64_xor_aesni(const std::uint8_t* round_keys, int rounds,
                         std::uint8_t counter[16], std::uint8_t* data,
                         std::size_t len);
void aes_ctr128_keystream_aesni(const std::uint8_t* round_keys, int rounds,
                                std::uint8_t counter[16], std::uint8_t* out,
                                std::size_t blocks);
double l2_squared_sse2(const float* a, const float* b, std::size_t n);
double dot_sse2(const float* a, const float* b, std::size_t n);
double l2_squared_avx2(const float* a, const float* b, std::size_t n);
double dot_avx2(const float* a, const float* b, std::size_t n);
std::uint32_t crc32c_update_sse42(std::uint32_t state,
                                  const std::uint8_t* data, std::size_t len);
#endif  // MIE_KERNELS_X86

}  // namespace mie::kernels::detail
