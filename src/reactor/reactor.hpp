// Epoll event-loop server: thousands of concurrent connections on one
// loop thread, with reads, parses and response writes all non-blocking.
//
// Architecture (DESIGN.md §12):
//
//   accept ─▶ per-connection net::FrameDecoder (incremental parse)
//                 │ complete frame
//                 ├─ mutating?  ─▶ GroupCommitter queue ─▶ one WAL
//                 │                 append_batch + fsync per batch
//                 └─ read-only  ─▶ exec::ThreadPool worker (slow ranked
//                                   searches never stall the loop)
//            completions ─▶ eventfd wake ─▶ responses written in request
//                                           order, drained on EPOLLOUT
//
// Admission control and backpressure keep the server graceful under
// overload: the accept backlog is bounded, connections beyond
// max_connections are refused, a server-wide in-flight cap stops the
// loop from dispatching faster than workers complete, and a connection
// whose unacked responses pass the per-connection watermark stops being
// read — TCP flow control then pushes back to the client.
//
// Protocol and failure semantics match the blocking net::TcpServer:
// checksummed frames both ways, responses per connection in request
// order, and a request whose handler throws (or a corrupt frame) drops
// that client while every other connection keeps being served.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "net/transport.hpp"
#include "reactor/group_commit.hpp"
#include "util/bytes.hpp"
#include "util/stopwatch.hpp"

namespace mie::reactor {

struct ReactorOptions {
    std::uint16_t port = 0;  ///< 0 = ephemeral; see ReactorServer::port()
    /// listen(2) backlog: pending-handshake connections beyond this are
    /// refused by the kernel instead of queueing without bound.
    int listen_backlog = 128;
    /// Established-connection cap; further accepts are closed immediately.
    std::size_t max_connections = 1024;
    /// Server-wide cap on dispatched-but-uncompleted requests.
    std::size_t max_in_flight = 1024;
    /// Per-connection cap on responses not yet written to the socket;
    /// beyond it the connection stops being read (backpressure).
    std::size_t per_connection_in_flight = 64;
    /// Per-connection cap on queued response BYTES awaiting the socket;
    /// same backpressure mechanism for few-but-huge responses.
    std::size_t write_high_watermark = 1u << 20;
    /// Connections that complete no frame for this long are closed (the
    /// slow-loris deadline: trickling partial frames does not reset it).
    /// <= 0 disables.
    double idle_timeout_seconds = 0.0;
};

class ReactorServer {
public:
    /// Requests for which `is_mutating` returns true are funneled into
    /// `committer`; everything else is served by `read_handler` on the
    /// exec::ThreadPool. Pass committer == nullptr (or an empty
    /// classifier) to serve every request through `read_handler`.
    /// `read_handler` and `committer` must outlive the server. Binds and
    /// listens on 127.0.0.1 immediately; throws std::runtime_error on
    /// socket failures.
    ReactorServer(net::RequestHandler& read_handler,
                  GroupCommitter* committer,
                  std::function<bool(BytesView)> is_mutating,
                  ReactorOptions options = {});

    /// Stops the loop and closes every connection.
    ~ReactorServer();

    ReactorServer(const ReactorServer&) = delete;
    ReactorServer& operator=(const ReactorServer&) = delete;

    /// Starts the event-loop thread (idempotent).
    void start();

    /// Stops accepting and reading, waits for every in-flight request to
    /// complete (keep the committer running until this returns), then
    /// closes all connections. Idempotent.
    void stop();

    /// The bound port (useful with options.port = 0).
    std::uint16_t port() const { return port_; }

    struct Stats {
        std::uint64_t connections_accepted = 0;
        std::uint64_t connections_rejected = 0;  ///< over max_connections
        std::uint64_t accept_transient_errors = 0;
        std::uint64_t frames_dispatched = 0;
        std::uint64_t responses_written = 0;
        std::uint64_t backpressure_pauses = 0;  ///< per-connection watermark
        std::uint64_t admission_pauses = 0;     ///< server-wide in-flight cap
        std::uint64_t idle_closed = 0;
        std::uint64_t protocol_errors = 0;  ///< corrupt frame / handler throw
    };
    Stats stats() const;

private:
    /// One response slot. The worker (pool or committer thread) fills
    /// response/error and then publishes with done.store(release); the
    /// loop thread observes done.load(acquire) before reading the rest —
    /// the only cross-thread handoff on the per-request path.
    struct Slot {
        std::atomic<bool> done{false};
        Bytes response;
        std::exception_ptr error;
    };

    struct Connection {
        Connection(std::uint64_t id, int fd) : id(id), fd(fd) {}

        const std::uint64_t id;
        const int fd;
        /// True once the loop closed the fd; workers then skip the wake.
        std::atomic<bool> closed{false};

        // Everything below is owned by the loop thread.
        net::FrameDecoder decoder;
        std::deque<std::shared_ptr<Slot>> pending;  ///< request order
        Bytes outbuf;
        std::size_t out_offset = 0;
        std::uint32_t interest = 0;  ///< current epoll event mask
        bool paused = false;         ///< EPOLLIN withheld (backpressure)
        bool eof = false;            ///< peer half-closed; flush then close
        double last_frame_seconds = 0.0;
    };

    void loop();
    void accept_all();
    void handle_event(const std::shared_ptr<Connection>& conn,
                      std::uint32_t events);
    void handle_readable(const std::shared_ptr<Connection>& conn);
    /// Parses and dispatches buffered frames; returns false if the
    /// connection was closed.
    bool process_frames(const std::shared_ptr<Connection>& conn);
    void dispatch(const std::shared_ptr<Connection>& conn, Bytes request);
    /// Worker-side: fill the slot, then wake the loop.
    void complete(const std::shared_ptr<Connection>& conn,
                  const std::shared_ptr<Slot>& slot, Bytes response,
                  std::exception_ptr error);
    /// Loop-side: move completed head responses into the write buffer.
    /// Returns false if the connection was closed (handler error).
    bool flush_completed(const std::shared_ptr<Connection>& conn);
    /// Returns false if the connection was closed (peer gone).
    bool try_write(const std::shared_ptr<Connection>& conn);
    void maybe_resume(const std::shared_ptr<Connection>& conn);
    void resume_paused();
    void sweep_idle();
    void close_connection(const std::shared_ptr<Connection>& conn);
    void update_interest(const std::shared_ptr<Connection>& conn,
                         std::uint32_t events);
    bool over_per_connection_watermark(const Connection& conn) const;
    void wake();

    net::RequestHandler& read_handler_;
    GroupCommitter* committer_;
    std::function<bool(BytesView)> is_mutating_;
    ReactorOptions options_;

    int listen_fd_ = -1;
    int epoll_fd_ = -1;
    int wakeup_fd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> running_{false};
    std::thread loop_thread_;
    Stopwatch clock_;
    double last_idle_sweep_seconds_ = 0.0;

    std::uint64_t next_connection_id_ = 2;  ///< 0 = listener, 1 = wakeup
    /// Live connections by id (ids are never reused, so a stale epoll
    /// event for a closed fd cannot alias a newly accepted connection).
    /// Ordered map: the idle sweep iterates it, and iteration order must
    /// not depend on hashing.
    std::map<std::uint64_t, std::shared_ptr<Connection>> connections_;
    std::map<std::uint64_t, std::shared_ptr<Connection>> paused_;

    /// Dispatched-but-uncompleted requests, server-wide (admission).
    std::atomic<std::size_t> total_in_flight_{0};

    /// Connections with freshly completed slots, filled by workers.
    std::mutex ready_mutex_;
    // mielint: guarded_by(ready_mutex_)
    std::vector<std::shared_ptr<Connection>> ready_;

    std::atomic<std::uint64_t> connections_accepted_{0};
    std::atomic<std::uint64_t> connections_rejected_{0};
    std::atomic<std::uint64_t> accept_transient_errors_{0};
    std::atomic<std::uint64_t> frames_dispatched_{0};
    std::atomic<std::uint64_t> responses_written_{0};
    std::atomic<std::uint64_t> backpressure_pauses_{0};
    std::atomic<std::uint64_t> admission_pauses_{0};
    std::atomic<std::uint64_t> idle_closed_{0};
    std::atomic<std::uint64_t> protocol_errors_{0};
};

}  // namespace mie::reactor
