// Group-commit queue: the funnel between the event loop and the durable
// batch handler.
//
// Mutating requests from any number of connections are enqueued here; a
// single committer thread repeatedly swallows everything pending (capped
// at max_batch) and hands it to a BatchRequestHandler in one call. A
// durable handler (mie::DurableServer::handle_batch) appends the whole
// batch to the WAL and pays ONE fsync for all of it, so the per-request
// durability cost shrinks by the batch size under load while each
// request is still acknowledged only after its bytes are power-loss
// durable (log-before-ack, unchanged).
//
// Completions run on the committer thread after the batch commits; the
// reactor's completion lambda hands the response back to the event loop.
// Batch size is emergent: under light load batches are size 1 (latency
// identical to the serial path); under load the queue fills while the
// previous fsync runs and the next batch amortizes it.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>

#include "net/batch.hpp"
#include "util/bytes.hpp"

namespace mie::reactor {

struct GroupCommitOptions {
    /// Cap on requests per commit. Bounds both the latency a request
    /// can be held back by its batch-mates and the WAL burst size.
    std::size_t max_batch = 256;
};

class GroupCommitter {
public:
    /// Invoked exactly once per submitted request, on the committer
    /// thread, after the request's batch is durable (error == nullptr)
    /// or failed (error carries the exception; response is empty).
    using Completion =
        std::function<void(Bytes response, std::exception_ptr error)>;

    using Options = GroupCommitOptions;

    /// Starts the committer thread. `handler` must outlive this object.
    explicit GroupCommitter(net::BatchRequestHandler& handler,
                            Options options = {});

    /// stop()s, draining pending requests first.
    ~GroupCommitter();

    GroupCommitter(const GroupCommitter&) = delete;
    GroupCommitter& operator=(const GroupCommitter&) = delete;

    /// Enqueues one mutating request. After stop(), `done` runs inline
    /// with an error instead.
    void submit(Bytes request, Completion done);

    /// Drains every pending request (each gets its completion), then
    /// stops the committer thread. Idempotent.
    void stop();

    struct Stats {
        std::uint64_t submitted = 0;
        std::uint64_t completed = 0;
        std::uint64_t batches = 0;    ///< handle_batch calls issued
        std::uint64_t max_batch = 0;  ///< largest batch committed
        std::uint64_t errors = 0;     ///< completions that carried an error
    };
    Stats stats() const;

private:
    struct Item {
        Bytes request;
        Completion done;
    };

    void run();

    net::BatchRequestHandler& handler_;
    Options options_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    // mielint: guarded_by(mutex_)
    std::deque<Item> queue_;
    // mielint: guarded_by(mutex_)
    bool stopping_ = false;
    // mielint: guarded_by(mutex_)
    Stats stats_;
    std::thread thread_;
};

}  // namespace mie::reactor
