#include "reactor/group_commit.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

namespace mie::reactor {

GroupCommitter::GroupCommitter(net::BatchRequestHandler& handler,
                               Options options)
    : handler_(handler), options_(options) {
    if (options_.max_batch == 0) options_.max_batch = 1;
    thread_ = std::thread([this] { run(); });
}

GroupCommitter::~GroupCommitter() { stop(); }

void GroupCommitter::submit(Bytes request, Completion done) {
    {
        const std::scoped_lock lock(mutex_);
        if (!stopping_) {
            ++stats_.submitted;
            queue_.push_back(Item{std::move(request), std::move(done)});
            cv_.notify_one();
            return;
        }
        ++stats_.submitted;
        ++stats_.completed;
        ++stats_.errors;
    }
    // Stopped: fail inline (outside the lock — the completion may call
    // back into code that takes other locks).
    done({}, std::make_exception_ptr(
                 std::runtime_error("GroupCommitter: stopped")));
}

void GroupCommitter::stop() {
    {
        const std::scoped_lock lock(mutex_);
        stopping_ = true;
        cv_.notify_all();
    }
    if (thread_.joinable()) thread_.join();
}

GroupCommitter::Stats GroupCommitter::stats() const {
    const std::scoped_lock lock(mutex_);
    return stats_;
}

void GroupCommitter::run() {
    for (;;) {
        std::vector<Item> batch;
        {
            std::unique_lock lock(mutex_);
            cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) return;  // stopping and fully drained
            const std::size_t take =
                std::min(queue_.size(), options_.max_batch);
            batch.reserve(take);
            for (std::size_t i = 0; i < take; ++i) {
                batch.push_back(std::move(queue_.front()));
                queue_.pop_front();
            }
            ++stats_.batches;
            stats_.max_batch = std::max<std::uint64_t>(stats_.max_batch,
                                                       batch.size());
        }

        std::vector<Bytes> requests;
        requests.reserve(batch.size());
        for (Item& item : batch) requests.push_back(std::move(item.request));

        std::vector<net::BatchRequestHandler::Result> results;
        std::exception_ptr batch_error;
        try {
            results = handler_.handle_batch(requests);
            if (results.size() != requests.size()) {
                throw std::logic_error(
                    "GroupCommitter: handler returned wrong result count");
            }
        } catch (...) {
            batch_error = std::current_exception();
        }

        std::uint64_t errors = 0;
        for (std::size_t i = 0; i < batch.size(); ++i) {
            if (batch_error) {
                ++errors;
                batch[i].done({}, batch_error);
            } else if (results[i].error) {
                ++errors;
                batch[i].done({}, results[i].error);
            } else {
                batch[i].done(std::move(results[i].response), nullptr);
            }
        }
        {
            const std::scoped_lock lock(mutex_);
            stats_.completed += batch.size();
            stats_.errors += errors;
        }
    }
}

}  // namespace mie::reactor
