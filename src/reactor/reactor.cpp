#include "reactor/reactor.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "exec/exec.hpp"
#include "net/tcp.hpp"

namespace mie::reactor {

namespace {

constexpr std::uint64_t kListenerId = 0;
constexpr std::uint64_t kWakeupId = 1;

/// Epoll timeout: the granularity of the idle sweep. Irrelevant for
/// request latency — completions wake the loop via eventfd immediately.
constexpr int kEpollTimeoutMs = 100;
constexpr double kIdleSweepPeriodSeconds = 0.1;

int make_listener(std::uint16_t port, int backlog, std::uint16_t& bound) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (fd < 0) throw std::runtime_error("reactor: socket failed");
    const int enable = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    address.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&address), sizeof(address)) !=
        0) {
        ::close(fd);
        throw std::runtime_error("reactor: bind failed");
    }
    if (::listen(fd, backlog) != 0) {
        ::close(fd);
        throw std::runtime_error("reactor: listen failed");
    }
    socklen_t address_length = sizeof(address);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&address),
                      &address_length) != 0) {
        ::close(fd);
        throw std::runtime_error("reactor: getsockname failed");
    }
    bound = ntohs(address.sin_port);
    return fd;
}

}  // namespace

ReactorServer::ReactorServer(net::RequestHandler& read_handler,
                             GroupCommitter* committer,
                             std::function<bool(BytesView)> is_mutating,
                             ReactorOptions options)
    : read_handler_(read_handler),
      committer_(committer),
      is_mutating_(std::move(is_mutating)),
      options_(options) {
    listen_fd_ = make_listener(options_.port, options_.listen_backlog, port_);
    epoll_fd_ = ::epoll_create1(0);
    if (epoll_fd_ < 0) {
        ::close(listen_fd_);
        throw std::runtime_error("reactor: epoll_create1 failed");
    }
    wakeup_fd_ = ::eventfd(0, EFD_NONBLOCK);
    if (wakeup_fd_ < 0) {
        ::close(epoll_fd_);
        ::close(listen_fd_);
        throw std::runtime_error("reactor: eventfd failed");
    }
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.u64 = kListenerId;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &event) != 0) {
        ::close(wakeup_fd_);
        ::close(epoll_fd_);
        ::close(listen_fd_);
        throw std::runtime_error("reactor: epoll_ctl(listener) failed");
    }
    event.data.u64 = kWakeupId;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wakeup_fd_, &event) != 0) {
        ::close(wakeup_fd_);
        ::close(epoll_fd_);
        ::close(listen_fd_);
        throw std::runtime_error("reactor: epoll_ctl(wakeup) failed");
    }
}

ReactorServer::~ReactorServer() {
    stop();
    if (wakeup_fd_ >= 0) ::close(wakeup_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (listen_fd_ >= 0) ::close(listen_fd_);
}

void ReactorServer::start() {
    bool expected = false;
    if (!running_.compare_exchange_strong(expected, true)) return;
    loop_thread_ = std::thread([this] { loop(); });
}

void ReactorServer::stop() {
    if (!running_.exchange(false)) {
        if (loop_thread_.joinable()) loop_thread_.join();
        return;
    }
    wake();
    if (loop_thread_.joinable()) loop_thread_.join();
    // The loop is gone; in-flight workers still hold shared_ptrs to their
    // connections and will write slots nobody reads. Wait them out so the
    // caller may safely tear down the handler and committer afterwards.
    while (total_in_flight_.load(std::memory_order_acquire) != 0) {
        std::this_thread::yield();
    }
    for (auto& [id, conn] : connections_) {
        conn->closed.store(true, std::memory_order_release);
        ::close(conn->fd);
    }
    connections_.clear();
    paused_.clear();
    // mielint: allow(R8): loop joined, in-flight drained; no writers left
    ready_.clear();
}

ReactorServer::Stats ReactorServer::stats() const {
    Stats out;
    out.connections_accepted = connections_accepted_.load();
    out.connections_rejected = connections_rejected_.load();
    out.accept_transient_errors = accept_transient_errors_.load();
    out.frames_dispatched = frames_dispatched_.load();
    out.responses_written = responses_written_.load();
    out.backpressure_pauses = backpressure_pauses_.load();
    out.admission_pauses = admission_pauses_.load();
    out.idle_closed = idle_closed_.load();
    out.protocol_errors = protocol_errors_.load();
    return out;
}

// mielint: nonblocking
void ReactorServer::wake() {
    const std::uint64_t one = 1;
    // The counter saturating (EAGAIN) still leaves it nonzero = readable.
    [[maybe_unused]] const ssize_t n =
        ::write(wakeup_fd_, &one, sizeof(one));
}

// mielint: nonblocking
void ReactorServer::loop() {
    constexpr int kMaxEvents = 128;
    epoll_event events[kMaxEvents];
    while (running_.load(std::memory_order_acquire)) {
        // The loop's one intended wait: bounded by kEpollTimeoutMs and
        // cut short by the wakeup eventfd on any completion.
        // mielint: allow(R6): the event loop's one sanctioned wait
        const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents,
                                   kEpollTimeoutMs);
        if (n < 0) {
            if (errno == EINTR) continue;
            break;  // epoll fd unusable; nothing left to serve
        }
        for (int i = 0; i < n; ++i) {
            const std::uint64_t id = events[i].data.u64;
            if (id == kListenerId) {
                accept_all();
                continue;
            }
            if (id == kWakeupId) {
                std::uint64_t drained = 0;
                [[maybe_unused]] const ssize_t r =
                    ::read(wakeup_fd_, &drained, sizeof(drained));
                continue;
            }
            // Connections close mid-batch; a stale id simply misses.
            const auto it = connections_.find(id);
            if (it == connections_.end()) continue;
            // Copy, don't reference: close_connection erases the map
            // node mid-call, and a reference into it would dangle for
            // the rest of handle_event's call chain.
            const std::shared_ptr<Connection> conn = it->second;
            handle_event(conn, events[i].events);
        }

        // Flush worker completions into their connections' write buffers.
        std::vector<std::shared_ptr<Connection>> ready;
        {
            const std::scoped_lock lock(ready_mutex_);
            ready.swap(ready_);
        }
        for (const auto& conn : ready) {
            if (conn->closed.load(std::memory_order_acquire)) continue;
            if (!flush_completed(conn)) continue;
            if (!try_write(conn)) continue;
            maybe_resume(conn);
        }
        resume_paused();

        const double now = clock_.elapsed_seconds();
        if (options_.idle_timeout_seconds > 0.0 &&
            now - last_idle_sweep_seconds_ >= kIdleSweepPeriodSeconds) {
            last_idle_sweep_seconds_ = now;
            sweep_idle();
        }
    }
}

// mielint: nonblocking
void ReactorServer::accept_all() {
    for (;;) {
        // mielint: allow(R6): listener fd is SOCK_NONBLOCK; drains EAGAIN
        const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
        if (fd < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // drained
            if (net::is_transient_accept_error(errno)) {
                accept_transient_errors_.fetch_add(1);
                // Unlike the blocking server there is no sleep here: the
                // loop must keep serving existing connections. EMFILE
                // just stops accepting until an fd frees up.
                return;
            }
            return;  // fatal for the listener; existing conns live on
        }
        // Responses are small latency-bound frames; never let them sit
        // behind Nagle waiting for a delayed ACK.
        const int enable = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
        if (connections_.size() >= options_.max_connections) {
            connections_rejected_.fetch_add(1);
            ::close(fd);
            continue;
        }
        const std::uint64_t id = next_connection_id_++;
        auto conn = std::make_shared<Connection>(id, fd);
        conn->last_frame_seconds = clock_.elapsed_seconds();
        epoll_event event{};
        event.events = EPOLLIN;
        event.data.u64 = id;
        if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0) {
            ::close(fd);
            continue;
        }
        conn->interest = EPOLLIN;
        connections_.emplace(id, std::move(conn));
        connections_accepted_.fetch_add(1);
    }
}

// mielint: nonblocking
void ReactorServer::handle_event(const std::shared_ptr<Connection>& conn,
                                 std::uint32_t events) {
    if (events & (EPOLLERR | EPOLLHUP)) {
        // Peer is gone. Anything in flight completes into a dead slot.
        close_connection(conn);
        return;
    }
    if (events & EPOLLIN) {
        handle_readable(conn);
        if (conn->closed.load(std::memory_order_relaxed)) return;
    }
    if (events & EPOLLOUT) {
        if (!try_write(conn)) return;
        maybe_resume(conn);
    }
}

// mielint: nonblocking
void ReactorServer::handle_readable(const std::shared_ptr<Connection>& conn) {
    std::uint8_t chunk[16 * 1024];
    for (;;) {
        // mielint: allow(R6): connection fds are SOCK_NONBLOCK
        const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
        if (n > 0) {
            conn->decoder.feed(BytesView(chunk, static_cast<std::size_t>(n)));
            if (!process_frames(conn)) return;
            if (conn->paused) return;  // stop draining the socket too
            continue;
        }
        if (n == 0) {
            // Half-close: the peer finished sending but may still be
            // waiting for responses to requests already in flight.
            conn->eof = true;
            if (conn->pending.empty() && conn->outbuf.size() ==
                                             conn->out_offset) {
                close_connection(conn);
            }
            return;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        close_connection(conn);  // ECONNRESET and friends
        return;
    }
}

// mielint: nonblocking
bool ReactorServer::process_frames(const std::shared_ptr<Connection>& conn) {
    for (;;) {
        if (over_per_connection_watermark(*conn)) {
            if (!conn->paused) {
                conn->paused = true;
                backpressure_pauses_.fetch_add(1);
                paused_[conn->id] = conn;
                update_interest(conn, conn->interest & ~EPOLLIN);
            }
            return true;
        }
        if (total_in_flight_.load(std::memory_order_relaxed) >=
            options_.max_in_flight) {
            // Server-wide admission: park this connection exactly like
            // backpressure; resume_paused() retries once workers drain.
            if (!conn->paused) {
                conn->paused = true;
                admission_pauses_.fetch_add(1);
                paused_[conn->id] = conn;
                update_interest(conn, conn->interest & ~EPOLLIN);
            }
            return true;
        }
        std::optional<Bytes> frame;
        try {
            frame = conn->decoder.next();
        } catch (const std::exception&) {
            // Corrupt stream: same policy as the blocking server — drop
            // this client, keep everyone else.
            protocol_errors_.fetch_add(1);
            close_connection(conn);
            return false;
        }
        if (!frame) return true;
        conn->last_frame_seconds = clock_.elapsed_seconds();
        dispatch(conn, std::move(*frame));
    }
}

// mielint: nonblocking
void ReactorServer::dispatch(const std::shared_ptr<Connection>& conn,
                             Bytes request) {
    auto slot = std::make_shared<Slot>();
    conn->pending.push_back(slot);
    total_in_flight_.fetch_add(1, std::memory_order_relaxed);
    frames_dispatched_.fetch_add(1);

    const bool mutating =
        committer_ != nullptr && is_mutating_ && is_mutating_(request);
    if (mutating) {
        committer_->submit(
            std::move(request),
            [this, conn, slot](Bytes response, std::exception_ptr error) {
                complete(conn, slot, std::move(response), error);
            });
        return;
    }
    auto shared_request = std::make_shared<Bytes>(std::move(request));
    exec::ThreadPool::global().submit([this, conn, slot, shared_request] {
        Bytes response;
        std::exception_ptr error;
        try {
            response = read_handler_.handle(*shared_request);
        } catch (...) {
            error = std::current_exception();
        }
        complete(conn, slot, std::move(response), error);
    });
}

void ReactorServer::complete(const std::shared_ptr<Connection>& conn,
                             const std::shared_ptr<Slot>& slot,
                             Bytes response, std::exception_ptr error) {
    slot->response = std::move(response);
    slot->error = error;
    slot->done.store(true, std::memory_order_release);
    if (!conn->closed.load(std::memory_order_acquire)) {
        {
            const std::scoped_lock lock(ready_mutex_);
            ready_.push_back(conn);
        }
        wake();
    }
    // Last touch of any member: stop() may free the server right after
    // this decrement reaches zero.
    total_in_flight_.fetch_sub(1, std::memory_order_release);
}

// mielint: nonblocking
bool ReactorServer::flush_completed(const std::shared_ptr<Connection>& conn) {
    while (!conn->pending.empty() &&
           conn->pending.front()->done.load(std::memory_order_acquire)) {
        const std::shared_ptr<Slot> slot = std::move(conn->pending.front());
        conn->pending.pop_front();
        if (slot->error) {
            // Handler failure: same policy as the blocking server — the
            // client is dropped rather than sent a fabricated reply.
            protocol_errors_.fetch_add(1);
            close_connection(conn);
            return false;
        }
        std::uint8_t header[net::kFrameHeaderSize];
        net::encode_frame_header(slot->response, header);
        conn->outbuf.insert(conn->outbuf.end(), header,
                            header + net::kFrameHeaderSize);
        conn->outbuf.insert(conn->outbuf.end(), slot->response.begin(),
                            slot->response.end());
        responses_written_.fetch_add(1);
    }
    return true;
}

// mielint: nonblocking
bool ReactorServer::try_write(const std::shared_ptr<Connection>& conn) {
    while (conn->out_offset < conn->outbuf.size()) {
        // mielint: allow(R6): connection fds are SOCK_NONBLOCK
        const ssize_t n = ::send(
            conn->fd, conn->outbuf.data() + conn->out_offset,
            conn->outbuf.size() - conn->out_offset, MSG_NOSIGNAL);
        if (n > 0) {
            conn->out_offset += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            update_interest(conn, conn->interest | EPOLLOUT);
            return true;
        }
        if (n < 0 && errno == EINTR) continue;
        close_connection(conn);  // peer reset while we owed it data
        return false;
    }
    // Fully drained: recycle the buffer and drop write interest.
    conn->outbuf.clear();
    conn->out_offset = 0;
    update_interest(conn, conn->interest & ~EPOLLOUT);
    if (conn->eof && conn->pending.empty()) {
        close_connection(conn);
        return false;
    }
    return true;
}

bool ReactorServer::over_per_connection_watermark(
    const Connection& conn) const {
    return conn.pending.size() >= options_.per_connection_in_flight ||
           conn.outbuf.size() - conn.out_offset >=
               options_.write_high_watermark;
}

// mielint: nonblocking
void ReactorServer::maybe_resume(const std::shared_ptr<Connection>& conn) {
    if (!conn->paused || over_per_connection_watermark(*conn)) return;
    if (total_in_flight_.load(std::memory_order_relaxed) >=
        options_.max_in_flight) {
        return;
    }
    conn->paused = false;
    paused_.erase(conn->id);
    update_interest(conn, conn->interest | EPOLLIN);
    // Frames may be fully buffered in the decoder already — no further
    // EPOLLIN will fire for them, so parse now.
    if (!process_frames(conn)) return;
    if (!flush_completed(conn)) return;
    try_write(conn);
}

// mielint: nonblocking
void ReactorServer::resume_paused() {
    if (paused_.empty()) return;
    // Copy: maybe_resume mutates paused_.
    std::vector<std::shared_ptr<Connection>> parked;
    parked.reserve(paused_.size());
    for (const auto& [id, conn] : paused_) parked.push_back(conn);
    for (const auto& conn : parked) {
        if (conn->closed.load(std::memory_order_relaxed)) {
            paused_.erase(conn->id);
            continue;
        }
        maybe_resume(conn);
    }
}

// mielint: nonblocking
void ReactorServer::sweep_idle() {
    const double now = clock_.elapsed_seconds();
    std::vector<std::shared_ptr<Connection>> idle;
    for (const auto& [id, conn] : connections_) {
        // Completing frames resets the deadline; bytes alone do not, so a
        // slow-loris peer trickling a header forever still gets cut. A
        // connection waiting on its own in-flight requests is not idle.
        if (conn->pending.empty() &&
            now - conn->last_frame_seconds > options_.idle_timeout_seconds) {
            idle.push_back(conn);
        }
    }
    for (const auto& conn : idle) {
        idle_closed_.fetch_add(1);
        close_connection(conn);
    }
}

// mielint: nonblocking
void ReactorServer::close_connection(const std::shared_ptr<Connection>& conn) {
    if (conn->closed.exchange(true, std::memory_order_acq_rel)) return;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
    ::close(conn->fd);
    paused_.erase(conn->id);
    connections_.erase(conn->id);
    // In-flight slots for this connection complete into the shared_ptr
    // the worker still holds; flush skips them because closed is set.
}

// mielint: nonblocking
void ReactorServer::update_interest(const std::shared_ptr<Connection>& conn,
                                    std::uint32_t events) {
    if (events == conn->interest) return;
    epoll_event event{};
    event.events = events;
    event.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &event) == 0) {
        conn->interest = events;
    }
}

}  // namespace mie::reactor
