#include "cluster/router.hpp"

#include <stdexcept>

#include "crypto/kdf.hpp"

namespace mie::cluster {

Router::Router(std::uint32_t num_shards) : num_shards_(num_shards) {
    if (num_shards == 0) {
        throw std::invalid_argument("cluster::Router: num_shards must be >= 1");
    }
}

std::uint64_t Router::routing_digest(std::string_view repo_id) {
    const BytesView ikm(reinterpret_cast<const std::uint8_t*>(repo_id.data()),
                        repo_id.size());
    const Bytes digest = crypto::derive_key(ikm, kRoutingLabel, 8);
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
        value |= static_cast<std::uint64_t>(digest[static_cast<std::size_t>(i)])
                 << (8 * i);
    }
    return value;
}

std::uint32_t Router::shard_of(std::string_view repo_id) const {
    return static_cast<std::uint32_t>(routing_digest(repo_id) % num_shards_);
}

}  // namespace mie::cluster
