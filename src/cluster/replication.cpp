#include "cluster/replication.hpp"

#include <algorithm>
#include <utility>

#include "cluster/node.hpp"
#include "mie/wire.hpp"

namespace mie::cluster {
namespace {

constexpr std::uint8_t kKindRecords = 0;
constexpr std::uint8_t kKindSnapshot = 1;

Bytes encode_snapshot_response(const DurableServer& durable) {
    const DurableServer::ReplicationSnapshot snap =
        durable.replication_snapshot();
    net::MessageWriter writer;
    writer.write_u8(kKindSnapshot);
    writer.write_u64(snap.lsn);
    writer.write_bytes(snap.snapshot);
    return writer.take();
}

}  // namespace

ReplicationSource::ReplicationSource(DurableServer& durable,
                                     std::size_t max_pull_records)
    : durable_(durable),
      max_pull_records_(max_pull_records == 0 ? 1 : max_pull_records) {}

Bytes ReplicationSource::serve_pull(net::MessageReader& reader) const {
    const std::uint64_t after = reader.read_u64();
    const std::size_t max_records =
        std::min<std::size_t>(reader.read_u32(), max_pull_records_);

    // Fast-path check: the requested offset predates the retained log
    // (checkpoint truncation already dropped record after+1), so only a
    // snapshot can catch this reader up.
    if (after + 1 < durable_.oldest_log_lsn()) {
        return encode_snapshot_response(durable_);
    }

    std::vector<std::pair<std::uint64_t, Bytes>> records;
    const store::Wal::TailRead tail = durable_.read_log_from(
        after, max_records, [&records](store::Lsn lsn, BytesView payload) {
            records.emplace_back(lsn, Bytes(payload.begin(), payload.end()));
        });

    // The oldest_log_lsn check and the read race with checkpointing; if a
    // truncation slipped between them the batch has a gap (or is empty
    // short of the tail). Detect and fall back to the snapshot path —
    // never ship a non-contiguous record stream.
    const bool gap =
        (!records.empty() && records.front().first != after + 1) ||
        (records.empty() && !tail.end_of_log);
    if (gap) return encode_snapshot_response(durable_);

    net::MessageWriter writer;
    writer.write_u8(kKindRecords);
    writer.write_u8(tail.end_of_log ? 1 : 0);
    writer.write_u32(static_cast<std::uint32_t>(records.size()));
    for (const auto& [lsn, payload] : records) {
        writer.write_u64(lsn);
        writer.write_bytes(payload);
    }
    return writer.take();
}

Replicator::Replicator(Node& local, net::Transport& source,
                       std::size_t pull_batch)
    : local_(local),
      source_(source),
      pull_batch_(pull_batch == 0 ? 1 : pull_batch) {}

Replicator::PumpResult Replicator::pump() {
    // Fail fast when the local node was promoted since the last round
    // (client failover raced an in-flight pull): a primary must not keep
    // pulling from the node it just replaced. Checking before the network
    // round trip avoids even asking; apply_replicated() re-checks under
    // the node lock for the promotion that lands mid-pull.
    if (local_.role() == Role::kPrimary) throw NotFollowerError();
    net::MessageWriter request;
    request.write_u8(static_cast<std::uint8_t>(ClusterOp::kReplPull));
    request.write_u64(local_.acked_lsn());
    request.write_u32(static_cast<std::uint32_t>(pull_batch_));
    const Bytes response = source_.call(request.take());

    PumpResult result;
    net::MessageReader reader(response);
    const std::uint8_t kind = reader.read_u8();
    if (kind == kKindSnapshot) {
        const std::uint64_t snapshot_lsn = reader.read_u64();
        const Bytes snapshot = reader.read_bytes();
        local_.restore_replication_snapshot(snapshot_lsn, snapshot);
        result.restored_snapshot = true;
        // Not caught_up: records may have landed after the snapshot cut;
        // the next pump() fetches them as a plain record batch.
    } else if (kind == kKindRecords) {
        result.caught_up = reader.read_u8() != 0;
        const std::uint32_t count = reader.read_u32();
        for (std::uint32_t i = 0; i < count; ++i) {
            const std::uint64_t lsn = reader.read_u64();
            const Bytes payload = reader.read_bytes();
            local_.apply_replicated(lsn, payload);
            ++result.records_applied;
        }
    } else {
        throw std::invalid_argument(
            "cluster::Replicator: unknown replication response kind");
    }
    local_.flush_replication_offset();
    result.acked_lsn = local_.acked_lsn();
    return result;
}

std::size_t Replicator::sync() {
    std::size_t total = 0;
    for (;;) {
        const PumpResult round = pump();
        total += round.records_applied;
        if (round.caught_up) return total;
    }
}

}  // namespace mie::cluster
