// Cluster-aware client transport: routing, failover, scatter/gather.
//
// ClusterClient is itself a net::Transport, so any existing single-node
// client (MieClient and friends) can sit on top of it unchanged: each
// call is routed to the shard owning the request's repository (every MIE
// opcode carries the repository id right after the opcode byte), and
// failover is transparent — when the shard's primary endpoint fails with
// a TransportError, the client promotes the follower (kPromote) and
// replays the request against it. Replay is safe for mutations because
// scheme clients envelope them: the promoted follower rebuilt the
// primary's replay cache from the shipped WAL records, so an
// already-applied retry is answered from cache, not re-applied.
//
// Cross-repository ranked search is scatter/gather: one search per
// repository is routed to its shard, the per-repository ranked lists are
// merged by a deterministic k-way merge (score desc, ties by repository
// id then object id), and the result is bitwise-identical to running the
// same searches against one node holding every repository and merging
// with the same comparator — sharding must not change ranking.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/router.hpp"
#include "net/transport.hpp"
#include "util/bytes.hpp"

namespace mie::cluster {

/// One shard's replica endpoints. Wrap each transport in
/// net::RetryingTransport (or equivalent) so transient faults are
/// retried before the ClusterClient escalates to failover. `follower`
/// may be null for an unreplicated shard.
struct ShardEndpoints {
    net::Transport* primary = nullptr;
    net::Transport* follower = nullptr;
};

/// One entry of a merged cross-repository result list.
struct ClusterSearchResult {
    std::string repo_id;
    std::uint64_t object_id = 0;
    double score = 0.0;
    Bytes encrypted_object;
};

/// One repository's slice of a scatter/gather search: the repository id
/// plus the fully-encoded kSearch request for it.
struct RepoSearch {
    std::string repo_id;
    Bytes request;
};

/// Deterministic k-way merge of per-repository ranked lists (each sorted
/// score desc, object id asc — the server's response order). Total order:
/// score desc, then repo_id asc, then object_id asc; truncated to
/// `top_k`. Deterministic in the *set* of input lists (any permutation
/// merges identically), which is what makes cluster results comparable
/// bitwise against a single-node reference.
std::vector<ClusterSearchResult> merge_ranked(
    std::vector<std::vector<ClusterSearchResult>> lists, std::size_t top_k);

/// Decodes a kSearch response body into merge_ranked() input.
std::vector<ClusterSearchResult> parse_search_response(
    std::string_view repo_id, BytesView response);

class ClusterClient final : public net::Transport {
public:
    /// `shards[i]` serves shard i; every primary must be non-null.
    explicit ClusterClient(std::vector<ShardEndpoints> shards);

    std::uint32_t num_shards() const { return router_.num_shards(); }
    std::uint32_t shard_of(std::string_view repo_id) const {
        return router_.shard_of(repo_id);
    }

    /// Routes by the repository id inside the (possibly enveloped)
    /// request and applies shard failover. Cluster control ops carry no
    /// repository and are rejected — send those to a node directly.
    Bytes call(BytesView request) override;

    void reconnect() override;
    double network_seconds() const override;
    double server_seconds() const override;

    /// Scatter/gather ranked search across repositories (at most one
    /// query per repository), merged with merge_ranked().
    std::vector<ClusterSearchResult> search_union(
        const std::vector<RepoSearch>& queries, std::size_t top_k);

    /// True once shard has failed over to its follower.
    bool on_follower(std::uint32_t shard) const;

    struct Stats {
        std::uint64_t calls = 0;
        std::uint64_t failovers = 0;
        std::uint64_t scatter_queries = 0;
    };
    const Stats& stats() const { return stats_; }

private:
    net::Transport& active(std::uint32_t shard);
    Bytes call_shard(std::uint32_t shard, BytesView request);
    void fail_over(std::uint32_t shard);

    Router router_;
    std::vector<ShardEndpoints> shards_;
    /// 1 once the shard's follower was promoted and became the active
    /// endpoint (vector<uint8_t>: the usual vector<bool> caveats).
    std::vector<std::uint8_t> failed_over_;
    Stats stats_;
};

}  // namespace mie::cluster
