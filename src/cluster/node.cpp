#include "cluster/node.hpp"

#include <algorithm>
#include <string_view>

#include "mie/wire.hpp"
#include "net/envelope.hpp"
#include "net/message.hpp"

namespace mie::cluster {
namespace {

/// `<dir>/repl-offset` layout: 8-byte magic + u64 LE acknowledged LSN.
/// Written crash-atomically; a missing/short/mismatched file reads as 0
/// (the replicator then re-pulls from the start, and dedup absorbs the
/// overlap — losing the offset file is a performance bug, not a
/// correctness bug).
constexpr std::string_view kOffsetMagic = "MIEROFF1";
constexpr std::size_t kOffsetFileSize = 16;

}  // namespace

Node::Node(store::Vfs& vfs, const std::filesystem::path& dir,
           NodeOptions options)
    : vfs_(vfs),
      offset_path_(dir / "repl-offset"),
      durable_(vfs, dir, options.storage),
      source_(durable_, options.max_pull_records),
      role_(options.role) {
    load_replication_offset();
}

Role Node::role() const {
    const std::scoped_lock lock(mutex_);
    return role_;
}

void Node::promote() {
    const std::scoped_lock lock(mutex_);
    role_ = Role::kPrimary;
}

Bytes Node::handle(BytesView request) {
    if (request.empty()) {
        throw std::invalid_argument("cluster::Node: empty request");
    }
    // Cluster control ops are node-to-node traffic and never enveloped;
    // a leading 0xE7 byte always means an enveloped client request.
    if (request[0] != net::kEnvelopeMagic && is_cluster_op(request[0])) {
        return handle_cluster(request);
    }
    if (is_mutating_request(request) && role() != Role::kPrimary) {
        throw NotPrimaryError();
    }
    return durable_.handle(request);
}

std::vector<net::BatchRequestHandler::Result> Node::handle_batch(
    const std::vector<Bytes>& requests) {
    if (role() == Role::kPrimary) return durable_.handle_batch(requests);
    std::vector<net::BatchRequestHandler::Result> results(requests.size());
    const std::exception_ptr error =
        std::make_exception_ptr(NotPrimaryError());
    for (auto& result : results) result.error = error;
    return results;
}

Bytes Node::handle_cluster(BytesView request) {
    net::MessageReader reader(request);
    const auto op = static_cast<ClusterOp>(reader.read_u8());
    net::MessageWriter writer;
    switch (op) {
        case ClusterOp::kReplPull:
            return source_.serve_pull(reader);
        case ClusterOp::kReplState: {
            const std::scoped_lock lock(mutex_);
            writer.write_u8(static_cast<std::uint8_t>(role_));
            writer.write_u64(durable_.durability().last_lsn);
            writer.write_u64(role_ == Role::kPrimary
                                 ? durable_.durability().last_lsn
                                 : acked_lsn_);
            return writer.take();
        }
        case ClusterOp::kPromote:
            promote();
            writer.write_u8(1);
            return writer.take();
    }
    throw std::invalid_argument("cluster::Node: unknown cluster opcode");
}

void Node::apply_replicated(std::uint64_t source_lsn, BytesView record) {
    const std::scoped_lock lock(mutex_);
    // Promotion may race an in-flight pull: the check lives under the
    // same lock that promote() takes, so a record that lost the race can
    // never slide in after the role flip.
    if (role_ == Role::kPrimary) throw NotFollowerError();
    if (source_lsn <= acked_lsn_) {
        ++repl_stats_.records_skipped;
        return;
    }
    // Full durable path: the record re-applies (or is suppressed by the
    // replay cache when this is a crash-recovery overlap), re-logs into
    // the follower's own WAL, and lands in the follower's replay cache —
    // the follower stays promotable at every record boundary.
    durable_.handle(record);
    acked_lsn_ = source_lsn;
    acked_dirty_ = true;
    ++repl_stats_.records_applied;
}

void Node::restore_replication_snapshot(std::uint64_t snapshot_lsn,
                                        BytesView snapshot) {
    const std::scoped_lock lock(mutex_);
    if (role_ == Role::kPrimary) throw NotFollowerError();
    durable_.server().restore_snapshot(snapshot);
    // Checkpoint immediately: the restored state must not be combined
    // with this node's pre-existing WAL suffix on a later recovery.
    durable_.checkpoint_now();
    acked_lsn_ = snapshot_lsn;
    acked_dirty_ = true;
    ++repl_stats_.snapshots_restored;
}

void Node::flush_replication_offset() {
    const std::scoped_lock lock(mutex_);
    if (!acked_dirty_) return;
    Bytes data;
    data.reserve(kOffsetFileSize);
    data.insert(data.end(), kOffsetMagic.begin(), kOffsetMagic.end());
    for (int i = 0; i < 8; ++i) {
        data.push_back(static_cast<std::uint8_t>(acked_lsn_ >> (8 * i)));
    }
    store::atomic_write_file(vfs_, offset_path_, data);
    acked_dirty_ = false;
}

std::uint64_t Node::acked_lsn() const {
    const std::scoped_lock lock(mutex_);
    return acked_lsn_;
}

Node::ReplicationStats Node::replication() const {
    const std::scoped_lock lock(mutex_);
    return repl_stats_;
}

void Node::load_replication_offset() {
    if (!vfs_.exists(offset_path_)) return;
    const Bytes data = vfs_.read_file(offset_path_);
    if (data.size() != kOffsetFileSize ||
        !std::equal(kOffsetMagic.begin(), kOffsetMagic.end(), data.begin())) {
        return;  // unreadable offset: re-pull from 0, dedup absorbs it
    }
    std::uint64_t lsn = 0;
    for (int i = 0; i < 8; ++i) {
        lsn |= static_cast<std::uint64_t>(data[8 + static_cast<std::size_t>(i)])
               << (8 * i);
    }
    // mielint: allow(R8): ctor-only helper; no other thread exists yet
    acked_lsn_ = lsn;
}

}  // namespace mie::cluster
