// Deterministic repository -> shard routing.
//
// The cluster partitions repositories across N shards. Placement must be
// (a) computable by any client with no directory service, (b) stable
// across runs, processes and machines, and (c) uniform enough that
// millions of repositories spread evenly. The router therefore hashes the
// repository id through HKDF (src/crypto) with a fixed, versioned label
// and takes the first 8 bytes little-endian as the routing digest; the
// owning shard is digest mod num_shards.
//
// The digest is *independent of the shard count*: resharding from N to M
// shards re-evaluates only the cheap modulus against the same digest, and
// the golden-vector unit tests pin the digest values so no refactor can
// silently migrate every repository to a different shard.
#pragma once

#include <cstdint>
#include <string_view>

namespace mie::cluster {

class Router {
public:
    /// `num_shards` must be >= 1; throws std::invalid_argument otherwise.
    explicit Router(std::uint32_t num_shards);

    /// 64-bit routing digest of a repository id: the first 8 bytes of
    /// HKDF(ikm = repo_id, info = kRoutingLabel), little-endian. Stable
    /// across shard counts — only shard_of() consults num_shards.
    static std::uint64_t routing_digest(std::string_view repo_id);

    std::uint32_t num_shards() const { return num_shards_; }

    /// The shard owning `repo_id`: routing_digest(repo_id) % num_shards.
    std::uint32_t shard_of(std::string_view repo_id) const;

    /// Versioned HKDF info label; bump the version to deliberately
    /// remap every repository (a full-cluster migration).
    static constexpr std::string_view kRoutingLabel = "mie/cluster/route/v1";

private:
    std::uint32_t num_shards_;
};

}  // namespace mie::cluster
