// Primary -> follower replication by WAL shipping.
//
// The primary already owns the single source of truth for mutation order:
// its write-ahead log, whose records are the verbatim (enveloped) RPC
// request bytes. Replication therefore ships the WAL itself — the
// follower replays each record through its own DurableServer::handle()
// path, which re-applies the mutation, re-logs it locally, and re-inserts
// it into the follower's replay cache. A promoted follower is thus a
// full replacement primary: same state machine, same local WAL, same
// exactly-once dedup window for in-flight client retries.
//
// Pull, not push: the follower tracks its acknowledged replication
// offset (the highest primary LSN applied, persisted via the owning
// cluster::Node) and asks the primary for "records after L". When the
// primary's checkpointing has truncated records the follower still
// needs — or a fresh follower starts from zero against a long-lived
// primary — the source answers with a (snapshot, covering-lsn) pair
// instead and the follower bootstraps from it.
//
// Re-delivery across a follower crash is safe: the persisted offset may
// lag what the follower's local WAL already holds, and the re-pulled
// suffix is absorbed by envelope dedup (re-applies are suppressed) while
// non-enveloped records re-apply convergently (see DESIGN.md §13).
#pragma once

#include <cstdint>
#include <vector>

#include "mie/durable_server.hpp"
#include "net/message.hpp"
#include "net/transport.hpp"
#include "util/bytes.hpp"

namespace mie::cluster {

class Node;

/// Primary-side feed: answers kReplPull requests from a DurableServer's
/// log (see mie/wire.hpp for the wire layout).
class ReplicationSource {
public:
    explicit ReplicationSource(DurableServer& durable,
                               std::size_t max_pull_records = 256);

    /// Serves one kReplPull whose body (after the opcode byte) is in
    /// `reader`. Returns the encoded response: a batch of in-order
    /// records, or a snapshot when the requested offset predates the
    /// retained log (checkpoint truncation, or a from-zero bootstrap).
    Bytes serve_pull(net::MessageReader& reader) const;

private:
    DurableServer& durable_;
    std::size_t max_pull_records_;
};

/// Follower-side pump: pulls from the primary over any net::Transport and
/// applies to the local Node. pump() is a single deterministic round so
/// tests can interleave replication with client traffic explicitly;
/// sync() loops until the follower has caught up with the primary.
class Replicator {
public:
    Replicator(Node& local, net::Transport& source,
               std::size_t pull_batch = 256);

    struct PumpResult {
        std::size_t records_applied = 0;
        bool restored_snapshot = false;
        /// True when the source reported no records beyond what this
        /// round delivered (the follower is caught up as-of the pull).
        bool caught_up = false;
        /// Follower's acknowledged replication offset after the round.
        std::uint64_t acked_lsn = 0;
    };

    /// One pull/apply round; persists the follower's replication offset
    /// before returning. Throws net::TransportError if the source is
    /// unreachable (the caller decides whether to retry or fail over),
    /// and NotFollowerError if the local node has been promoted — a
    /// primary must never apply another node's records (split-brain
    /// containment; see cluster/node.hpp).
    PumpResult pump();

    /// Pumps until caught up; returns total records applied.
    std::size_t sync();

private:
    Node& local_;
    net::Transport& source_;
    std::size_t pull_batch_;
};

}  // namespace mie::cluster
