// A cluster node: one shard replica = role gate + DurableServer.
//
// Every node hosts a full durable MIE server (WAL, checkpoints, replay
// cache) plus the cluster control plane (mie::ClusterOp). The role gate
// is the only difference between replicas of a shard:
//
//   - kPrimary:  accepts client mutations (logged before ack, as always)
//     and serves the replication feed (kReplPull) to its followers;
//   - kFollower: rejects client mutations with NotPrimaryError, applies
//     replicated records through apply_replicated(), and answers reads —
//     a follower is also a valid (possibly stale) read replica.
//
// Failover = kPromote: the follower flips its role and immediately
// accepts mutations. Safety rests on two invariants rather than on any
// handshake: (1) clients only treat a response as applied after the
// primary logged it, and the fault-matrix tests only require *acked*
// operations to survive; (2) replayed client retries after failover are
// absorbed by the follower's replay cache, which was rebuilt verbatim
// from the shipped WAL records — exactly-once holds across the promote.
//
// The acknowledged replication offset (highest source LSN applied) is
// persisted crash-atomically to `<dir>/repl-offset` so a restarted
// follower resumes pulling where it left off. The persisted value may
// lag the locally-logged truth (crash between apply and flush); the
// re-pulled overlap is deduplicated by the envelope replay cache.
#pragma once

#include <cstdint>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "cluster/replication.hpp"
#include "mie/durable_server.hpp"
#include "net/batch.hpp"
#include "store/file.hpp"
#include "util/bytes.hpp"

namespace mie::cluster {

enum class Role : std::uint8_t {
    kFollower = 0,
    kPrimary = 1,
};

/// A client mutation reached a follower. In-process callers catch this
/// directly; over TCP the connection teardown surfaces as a transport
/// error and the ClusterClient's failover logic takes over either way.
class NotPrimaryError : public std::runtime_error {
public:
    NotPrimaryError() : std::runtime_error(
        "cluster: node is not the primary for this shard") {}
};

/// Replication application reached a primary. Fires when a Replicator
/// keeps pumping into a node that was promoted mid-pull (failover raced
/// an in-flight kReplPull): a primary accepting client mutations must
/// never also apply a stale primary's records, or the replicas diverge
/// silently under split-brain. The pump owner must stop replicating —
/// the promoted node is the shard's source of truth now.
class NotFollowerError : public std::runtime_error {
public:
    NotFollowerError() : std::runtime_error(
        "cluster: node is not a follower; refusing to apply "
        "replicated state onto a primary") {}
};

struct NodeOptions {
    Role role = Role::kPrimary;
    DurableServer::Options storage;
    /// Cap on records per kReplPull response served by this node.
    std::size_t max_pull_records = 256;
};

class Node final : public net::RequestHandler, public net::BatchRequestHandler {
public:
    /// Opens (and recovers) the node's durable state in `dir`, including
    /// the persisted replication offset if present.
    Node(store::Vfs& vfs, const std::filesystem::path& dir,
         NodeOptions options = {});

    /// Dispatches cluster control ops, role-gates client mutations, and
    /// forwards everything else to the durable server.
    Bytes handle(BytesView request) override;

    /// Group-commit entry point (reactor). On a follower every slot
    /// fails with NotPrimaryError — the committer only ever receives
    /// mutating requests.
    std::vector<net::BatchRequestHandler::Result> handle_batch(
        const std::vector<Bytes>& requests) override;

    Role role() const;

    /// Follower -> primary takeover (idempotent).
    void promote();

    // -- Follower-side replication application (driven by Replicator) ----

    /// Applies one shipped WAL record tagged with the source's LSN.
    /// Records at or below the acknowledged offset are skipped; fresh
    /// records run through the full durable handle() path (re-apply,
    /// re-log, replay-cache insert) and advance the offset in memory.
    /// Throws NotFollowerError on a primary (promotion raced the pull).
    void apply_replicated(std::uint64_t source_lsn, BytesView record);

    /// Bootstrap path: replaces local state with the source snapshot,
    /// checkpoints it locally (so the stale local WAL suffix is dead),
    /// and fast-forwards the acknowledged offset to `snapshot_lsn`.
    /// Throws NotFollowerError on a primary (promotion raced the pull).
    void restore_replication_snapshot(std::uint64_t snapshot_lsn,
                                      BytesView snapshot);

    /// Crash-atomically persists the in-memory acknowledged offset (no-op
    /// when unchanged since the last flush).
    void flush_replication_offset();

    /// Highest source LSN applied (the acknowledged replication offset).
    std::uint64_t acked_lsn() const;

    struct ReplicationStats {
        std::size_t records_applied = 0;    ///< fresh records applied
        std::size_t records_skipped = 0;    ///< at/below the acked offset
        std::size_t snapshots_restored = 0;
    };
    ReplicationStats replication() const;

    DurableServer& durable() { return durable_; }
    const DurableServer& durable() const { return durable_; }

private:
    Bytes handle_cluster(BytesView request);
    void load_replication_offset();

    store::Vfs& vfs_;
    std::filesystem::path offset_path_;
    DurableServer durable_;
    ReplicationSource source_;
    /// Guards role_ and the replication offset/stats; held across the
    /// follower-side apply so offset checks and the durable apply are
    /// atomic. Lock order: mutex_ before durable_'s log mutex (nothing
    /// inside DurableServer calls back into the node).
    mutable std::mutex mutex_;
    // mielint: guarded_by(mutex_)
    Role role_;
    // mielint: guarded_by(mutex_)
    std::uint64_t acked_lsn_ = 0;
    // mielint: guarded_by(mutex_)
    bool acked_dirty_ = false;
    // mielint: guarded_by(mutex_)
    ReplicationStats repl_stats_;
};

}  // namespace mie::cluster
