#include "cluster/client.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "mie/wire.hpp"
#include "net/envelope.hpp"
#include "net/error.hpp"
#include "net/message.hpp"

namespace mie::cluster {
namespace {

/// Every MIE opcode's body starts with the repository id; that is the
/// whole routing contract between the wire format and the cluster.
std::string routed_repo_id(BytesView request) {
    const BytesView inner = net::envelope_inner(request);
    net::MessageReader reader(inner);
    const std::uint8_t opcode = reader.read_u8();
    if (is_cluster_op(opcode)) {
        throw std::invalid_argument(
            "ClusterClient: cluster control ops are per-node; "
            "send them to a shard endpoint directly");
    }
    return reader.read_string();
}

bool result_before(const ClusterSearchResult& a, const ClusterSearchResult& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.repo_id != b.repo_id) return a.repo_id < b.repo_id;
    return a.object_id < b.object_id;
}

}  // namespace

std::vector<ClusterSearchResult> parse_search_response(
    std::string_view repo_id, BytesView response) {
    net::MessageReader reader(response);
    const std::uint32_t count = reader.read_u32();
    std::vector<ClusterSearchResult> results;
    results.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        ClusterSearchResult result;
        result.repo_id = std::string(repo_id);
        result.object_id = reader.read_u64();
        result.score = reader.read_f64();
        result.encrypted_object = reader.read_bytes();
        results.push_back(std::move(result));
    }
    return results;
}

std::vector<ClusterSearchResult> merge_ranked(
    std::vector<std::vector<ClusterSearchResult>> lists, std::size_t top_k) {
    std::vector<std::size_t> heads(lists.size(), 0);
    std::vector<ClusterSearchResult> merged;
    while (merged.size() < top_k) {
        std::size_t best = lists.size();
        for (std::size_t i = 0; i < lists.size(); ++i) {
            if (heads[i] >= lists[i].size()) continue;
            if (best == lists.size() ||
                result_before(lists[i][heads[i]], lists[best][heads[best]])) {
                best = i;
            }
        }
        if (best == lists.size()) break;  // every list exhausted
        merged.push_back(std::move(lists[best][heads[best]]));
        ++heads[best];
    }
    return merged;
}

ClusterClient::ClusterClient(std::vector<ShardEndpoints> shards)
    : router_(static_cast<std::uint32_t>(shards.size())),
      shards_(std::move(shards)),
      failed_over_(shards_.size(), 0) {
    for (const ShardEndpoints& shard : shards_) {
        if (shard.primary == nullptr) {
            throw std::invalid_argument(
                "ClusterClient: every shard needs a primary endpoint");
        }
    }
}

net::Transport& ClusterClient::active(std::uint32_t shard) {
    return failed_over_[shard] != 0 ? *shards_[shard].follower
                                    : *shards_[shard].primary;
}

bool ClusterClient::on_follower(std::uint32_t shard) const {
    return failed_over_.at(shard) != 0;
}

void ClusterClient::fail_over(std::uint32_t shard) {
    net::Transport* follower = shards_[shard].follower;
    // Promotion through the follower's own endpoint; if the follower is
    // also unreachable this throws TransportError and the caller gives
    // up — the shard has lost both replicas.
    net::MessageWriter promote;
    promote.write_u8(static_cast<std::uint8_t>(mie::ClusterOp::kPromote));
    const Bytes ack = follower->call(promote.take());
    if (ack.size() != 1 || ack[0] != 1) {
        throw net::TransportError(net::TransportErrorKind::kCorruptFrame,
                                  "cluster: malformed promote ack");
    }
    failed_over_[shard] = 1;
    ++stats_.failovers;
}

Bytes ClusterClient::call_shard(std::uint32_t shard, BytesView request) {
    ++stats_.calls;
    try {
        return active(shard).call(request);
    } catch (const net::TransportError&) {
        if (failed_over_[shard] != 0 || shards_[shard].follower == nullptr) {
            throw;  // already on the follower, or nothing to fail over to
        }
        fail_over(shard);
        // Replay against the promoted follower. Enveloped mutations that
        // the dead primary applied AND shipped are deduplicated by the
        // follower's rebuilt replay cache; unshipped ones apply fresh —
        // either way the client observes exactly-once.
        return active(shard).call(request);
    }
}

Bytes ClusterClient::call(BytesView request) {
    return call_shard(router_.shard_of(routed_repo_id(request)), request);
}

void ClusterClient::reconnect() {
    for (std::uint32_t shard = 0; shard < shards_.size(); ++shard) {
        active(shard).reconnect();
    }
}

double ClusterClient::network_seconds() const {
    double total = 0.0;
    for (const ShardEndpoints& shard : shards_) {
        total += shard.primary->network_seconds();
        if (shard.follower != nullptr) {
            total += shard.follower->network_seconds();
        }
    }
    return total;
}

double ClusterClient::server_seconds() const {
    double total = 0.0;
    for (const ShardEndpoints& shard : shards_) {
        total += shard.primary->server_seconds();
        if (shard.follower != nullptr) {
            total += shard.follower->server_seconds();
        }
    }
    return total;
}

std::vector<ClusterSearchResult> ClusterClient::search_union(
    const std::vector<RepoSearch>& queries, std::size_t top_k) {
    std::vector<std::vector<ClusterSearchResult>> lists;
    lists.reserve(queries.size());
    for (const RepoSearch& query : queries) {
        ++stats_.scatter_queries;
        const Bytes response =
            call_shard(router_.shard_of(query.repo_id), query.request);
        lists.push_back(parse_search_response(query.repo_id, response));
    }
    return merge_ranked(std::move(lists), top_k);
}

}  // namespace mie::cluster
