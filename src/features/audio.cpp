#include "features/audio.hpp"

#include <cmath>
#include <numbers>

namespace mie::features {

namespace {

/// Goertzel band energy of one windowed frame at frequency `hz`.
double goertzel_energy(std::span<const float> frame, double hz,
                       double sample_rate) {
    const double k = 2.0 * std::numbers::pi * hz / sample_rate;
    const double coeff = 2.0 * std::cos(k);
    double s_prev = 0.0, s_prev2 = 0.0;
    for (std::size_t n = 0; n < frame.size(); ++n) {
        // Hann window applied inline.
        const double w =
            0.5 - 0.5 * std::cos(2.0 * std::numbers::pi *
                                 static_cast<double>(n) /
                                 static_cast<double>(frame.size() - 1));
        const double s = w * frame[n] + coeff * s_prev - s_prev2;
        s_prev2 = s_prev;
        s_prev = s;
    }
    return s_prev * s_prev + s_prev2 * s_prev2 - coeff * s_prev * s_prev2;
}

}  // namespace

std::vector<FeatureVec> extract_audio_descriptors(
    std::span<const float> waveform, const AudioFeatureParams& params) {
    std::vector<FeatureVec> descriptors;
    if (waveform.size() < params.frame_size || params.bands == 0) {
        return descriptors;
    }

    // Geometrically spaced band centers between min_hz and max_hz.
    std::vector<double> centers(params.bands);
    const double ratio =
        std::pow(params.max_hz / params.min_hz,
                 1.0 / static_cast<double>(params.bands - 1));
    double hz = params.min_hz;
    for (auto& center : centers) {
        center = hz;
        hz *= ratio;
    }

    std::vector<double> previous_bands;
    for (std::size_t start = 0; start + params.frame_size <= waveform.size();
         start += params.hop) {
        const std::span<const float> frame =
            waveform.subspan(start, params.frame_size);

        // Skip near-silent frames (no information, like flat image patches).
        double rms = 0.0;
        for (float x : frame) rms += static_cast<double>(x) * x;
        rms = std::sqrt(rms / static_cast<double>(frame.size()));
        if (rms < 1e-4) {
            previous_bands.clear();
            continue;
        }

        std::vector<double> bands(params.bands);
        for (std::size_t b = 0; b < params.bands; ++b) {
            bands[b] = std::log1p(
                goertzel_energy(frame, centers[b], params.sample_rate));
        }

        FeatureVec descriptor(audio_descriptor_dims(params), 0.0f);
        for (std::size_t b = 0; b < params.bands; ++b) {
            descriptor[b] = static_cast<float>(bands[b]);
            descriptor[params.bands + b] = static_cast<float>(
                previous_bands.empty() ? 0.0 : bands[b] - previous_bands[b]);
        }
        normalize(descriptor);
        descriptors.push_back(std::move(descriptor));
        previous_bands = std::move(bands);
    }
    return descriptors;
}

}  // namespace mie::features
