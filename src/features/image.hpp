// Grayscale image container and integral image.
//
// The reproduction has no image-file I/O: images come from the synthetic
// dataset generators (sim/dataset.hpp), which substitute for MIR-Flickr and
// INRIA Holidays (see DESIGN.md §1).
#pragma once

#include <cstddef>
#include <vector>

namespace mie::features {

/// Row-major grayscale image with float pixels (any range; generators emit
/// [0, 1]).
class Image {
public:
    Image() = default;

    /// Creates a width x height image initialized to zero.
    Image(int width, int height);

    int width() const { return width_; }
    int height() const { return height_; }

    /// Unchecked pixel access.
    float at(int x, int y) const {
        return pixels_[static_cast<std::size_t>(y) * width_ + x];
    }
    float& at(int x, int y) {
        return pixels_[static_cast<std::size_t>(x) +
                       static_cast<std::size_t>(y) * width_];
    }

    /// Pixel access clamped to the image border (for filters).
    float at_clamped(int x, int y) const;

    const std::vector<float>& pixels() const { return pixels_; }

private:
    int width_ = 0;
    int height_ = 0;
    std::vector<float> pixels_;
};

/// Summed-area table enabling O(1) box sums, the core trick behind SURF's
/// Haar-wavelet responses.
class IntegralImage {
public:
    explicit IntegralImage(const Image& image);

    /// Sum of pixels in the inclusive rectangle [x0, x1] x [y0, y1],
    /// clamped to the image bounds. Empty (inverted) rectangles sum to 0.
    double box_sum(int x0, int y0, int x1, int y1) const;

    int width() const { return width_; }
    int height() const { return height_; }

private:
    // table_ has (width+1) x (height+1) entries; table(x, y) is the sum of
    // pixels strictly above/left of (x, y).
    double table(int x, int y) const {
        return table_[static_cast<std::size_t>(y) * (width_ + 1) + x];
    }

    int width_ = 0;
    int height_ = 0;
    std::vector<double> table_;
};

}  // namespace mie::features
