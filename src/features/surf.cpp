#include "features/surf.hpp"

#include <cmath>

#include "exec/exec.hpp"

namespace mie::features {

std::vector<Keypoint> dense_pyramid_keypoints(
    int width, int height, const DensePyramidParams& params) {
    std::vector<Keypoint> keypoints;
    float stride = static_cast<float>(params.base_stride);
    float scale = params.base_scale;
    for (int level = 0; level < params.levels; ++level) {
        // Keep a margin so the 20s descriptor window stays mostly inside.
        const int margin = static_cast<int>(std::ceil(10.0f * scale));
        for (float y = static_cast<float>(margin); y < height - margin;
             y += stride) {
            for (float x = static_cast<float>(margin); x < width - margin;
                 x += stride) {
                keypoints.push_back(Keypoint{x, y, scale});
            }
        }
        stride *= params.level_factor;
        scale *= params.level_factor;
    }
    return keypoints;
}

namespace {

/// Haar wavelet response in x at (x, y) with filter size 2s:
/// right half minus left half box sums.
double haar_x(const IntegralImage& ii, int x, int y, int s) {
    return ii.box_sum(x, y - s, x + s - 1, y + s - 1) -
           ii.box_sum(x - s, y - s, x - 1, y + s - 1);
}

/// Haar wavelet response in y: bottom half minus top half.
double haar_y(const IntegralImage& ii, int x, int y, int s) {
    return ii.box_sum(x - s, y, x + s - 1, y + s - 1) -
           ii.box_sum(x - s, y - s, x + s - 1, y - 1);
}

/// Gaussian weight relative to the patch center, sigma = 3.3 * scale as in
/// the SURF paper.
double gaussian_weight(double dx, double dy, double sigma) {
    return std::exp(-(dx * dx + dy * dy) / (2.0 * sigma * sigma));
}

}  // namespace

FeatureVec SurfExtractor::describe(const IntegralImage& integral,
                                   const Keypoint& kp) const {
    FeatureVec descriptor(kDescriptorSize, 0.0f);
    const double s = kp.scale;
    const int haar_size = std::max(1, static_cast<int>(std::lround(s)));
    const double sigma = 3.3 * s;

    // 4x4 subregions, each sampled at 5x5 points spaced s apart, spanning
    // the canonical 20s x 20s window centered on the keypoint.
    for (int sub_y = 0; sub_y < 4; ++sub_y) {
        for (int sub_x = 0; sub_x < 4; ++sub_x) {
            double sum_dx = 0.0, sum_dy = 0.0;
            double sum_abs_dx = 0.0, sum_abs_dy = 0.0;
            for (int j = 0; j < 5; ++j) {
                for (int i = 0; i < 5; ++i) {
                    // Offset from the keypoint in units of s: subregion
                    // origin (-10 + 5*sub) plus sample position.
                    const double off_x = (-10.0 + 5.0 * sub_x + i + 0.5) * s;
                    const double off_y = (-10.0 + 5.0 * sub_y + j + 0.5) * s;
                    const int px = static_cast<int>(std::lround(kp.x + off_x));
                    const int py = static_cast<int>(std::lround(kp.y + off_y));
                    const double w = gaussian_weight(off_x, off_y, sigma);
                    const double dx = w * haar_x(integral, px, py, haar_size);
                    const double dy = w * haar_y(integral, px, py, haar_size);
                    sum_dx += dx;
                    sum_dy += dy;
                    sum_abs_dx += std::abs(dx);
                    sum_abs_dy += std::abs(dy);
                }
            }
            const std::size_t base =
                (static_cast<std::size_t>(sub_y) * 4 + sub_x) * 4;
            descriptor[base + 0] = static_cast<float>(sum_dx);
            descriptor[base + 1] = static_cast<float>(sum_dy);
            descriptor[base + 2] = static_cast<float>(sum_abs_dx);
            descriptor[base + 3] = static_cast<float>(sum_abs_dy);
        }
    }
    normalize(descriptor);
    return descriptor;
}

std::vector<FeatureVec> SurfExtractor::describe_all(
    const Image& image, const std::vector<Keypoint>& keypoints) const {
    const IntegralImage integral(image);
    // Keypoints are described independently into disjoint slots, so the
    // fan-out is deterministic by construction.
    std::vector<FeatureVec> descriptors(keypoints.size());
    exec::parallel_for(0, keypoints.size(), 16, [&](std::size_t i) {
        descriptors[i] = describe(integral, keypoints[i]);
    });
    return descriptors;
}

std::vector<FeatureVec> SurfExtractor::extract(
    const Image& image, const DensePyramidParams& params) const {
    return describe_all(
        image, dense_pyramid_keypoints(image.width(), image.height(), params));
}

}  // namespace mie::features
