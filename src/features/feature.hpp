// Common feature-vector type and distance helpers.
//
// Dense modalities (images) produce 64-dim float descriptors (U-SURF);
// sparse modalities (text) produce keyword histograms (see text.hpp).
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

namespace mie::features {

/// Dense feature vector (row of descriptors, e.g. one SURF keypoint).
using FeatureVec = std::vector<float>;

/// Euclidean (L2) distance between two equal-length vectors.
double euclidean_distance(const FeatureVec& a, const FeatureVec& b);

/// Squared Euclidean distance (avoids the sqrt for nearest-neighbor scans).
double squared_distance(const FeatureVec& a, const FeatureVec& b);

/// Euclidean norm.
double norm(const FeatureVec& v);

/// Scales `v` to unit L2 norm in place (no-op for the zero vector).
void normalize(FeatureVec& v);

}  // namespace mie::features
