#include "features/text.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <unordered_set>

namespace mie::features {

std::vector<std::string> tokenize(std::string_view text) {
    std::vector<std::string> tokens;
    std::string current;
    for (char c : text) {
        // Alphanumeric keeps realistic tags like "dsc042" or "nikon2013".
        if (std::isalnum(static_cast<unsigned char>(c))) {
            current.push_back(
                static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
        } else if (!current.empty()) {
            if (current.size() >= 2) tokens.push_back(std::move(current));
            current.clear();
        }
    }
    if (current.size() >= 2) tokens.push_back(std::move(current));
    return tokens;
}

bool is_stop_word(std::string_view word) {
    static const std::unordered_set<std::string_view> kStopWords = {
        "a",     "about", "above", "after",  "again", "all",   "am",
        "an",    "and",   "any",   "are",    "as",    "at",    "be",
        "been",  "being", "below", "but",    "by",    "can",   "did",
        "do",    "does",  "doing", "down",   "each",  "few",   "for",
        "from",  "had",   "has",   "have",   "he",    "her",   "here",
        "hers",  "him",   "his",   "how",    "i",     "if",    "in",
        "into",  "is",    "it",    "its",    "just",  "me",    "more",
        "most",  "my",    "no",    "nor",    "not",   "now",   "of",
        "off",   "on",    "once",  "only",   "or",    "other", "our",
        "out",   "over",  "own",   "same",   "she",   "so",    "some",
        "such",  "than",  "that",  "the",    "their", "them",  "then",
        "there", "these", "they",  "this",   "those", "to",    "too",
        "under", "until", "up",    "very",   "was",   "we",    "were",
        "what",  "when",  "where", "which",  "while", "who",   "whom",
        "why",   "will",  "with",  "you",    "your",  "yours", "during",
        "before", "because", "against", "between", "through", "further",
        "both",  "it",    "ours",  "theirs", "itself", "himself",
        "herself", "myself", "yourself", "themselves", "ourselves",
    };
    return kStopWords.contains(word);
}

namespace {

/// Porter stemmer working buffer. Implements the 1980 algorithm with the
/// commonly adopted revisions (bli->ble, logi->log).
class PorterStemmer {
public:
    explicit PorterStemmer(std::string_view word) : b_(word) {}

    std::string stem() {
        if (b_.size() <= 2) return b_;
        step1a();
        step1b();
        step1c();
        step2();
        step3();
        step4();
        step5a();
        step5b();
        return b_;
    }

private:
    std::string b_;

    bool is_consonant(std::size_t i) const {
        switch (b_[i]) {
            case 'a':
            case 'e':
            case 'i':
            case 'o':
            case 'u':
                return false;
            case 'y':
                return i == 0 ? true : !is_consonant(i - 1);
            default:
                return true;
        }
    }

    /// Measure of b_[0..k]: number of VC sequences.
    int measure(std::size_t len) const {
        int n = 0;
        std::size_t i = 0;
        // Skip initial consonants.
        while (i < len && is_consonant(i)) ++i;
        while (i < len) {
            // Skip vowels.
            while (i < len && !is_consonant(i)) ++i;
            if (i >= len) break;
            ++n;
            while (i < len && is_consonant(i)) ++i;
        }
        return n;
    }

    int measure_of_stem(std::size_t suffix_len) const {
        return measure(b_.size() - suffix_len);
    }

    bool stem_has_vowel(std::size_t suffix_len) const {
        const std::size_t len = b_.size() - suffix_len;
        for (std::size_t i = 0; i < len; ++i) {
            if (!is_consonant(i)) return true;
        }
        return false;
    }

    bool ends_double_consonant() const {
        const std::size_t n = b_.size();
        return n >= 2 && b_[n - 1] == b_[n - 2] && is_consonant(n - 1);
    }

    /// *o: stem ends consonant-vowel-consonant where the final consonant is
    /// not w, x or y.
    bool ends_cvc(std::size_t suffix_len) const {
        const std::size_t len = b_.size() - suffix_len;
        if (len < 3) return false;
        if (!is_consonant(len - 3) || is_consonant(len - 2) ||
            !is_consonant(len - 1)) {
            return false;
        }
        const char c = b_[len - 1];
        return c != 'w' && c != 'x' && c != 'y';
    }

    bool ends_with(std::string_view suffix) const {
        return b_.size() >= suffix.size() &&
               b_.compare(b_.size() - suffix.size(), suffix.size(), suffix) ==
                   0;
    }

    void replace_suffix(std::size_t suffix_len, std::string_view replacement) {
        b_.replace(b_.size() - suffix_len, suffix_len, replacement);
    }

    /// If b_ ends with `suffix` and measure(stem) > threshold, replace it.
    bool rule(std::string_view suffix, std::string_view replacement,
              int m_threshold) {
        if (!ends_with(suffix)) return false;
        if (measure_of_stem(suffix.size()) <= m_threshold) return true;
        replace_suffix(suffix.size(), replacement);
        return true;
    }

    void step1a() {
        if (ends_with("sses")) {
            replace_suffix(4, "ss");
        } else if (ends_with("ies")) {
            replace_suffix(3, "i");
        } else if (!ends_with("ss") && ends_with("s")) {
            replace_suffix(1, "");
        }
    }

    void step1b() {
        if (ends_with("eed")) {
            if (measure_of_stem(3) > 0) replace_suffix(3, "ee");
            return;
        }
        bool fired = false;
        if (ends_with("ed") && stem_has_vowel(2)) {
            replace_suffix(2, "");
            fired = true;
        } else if (ends_with("ing") && stem_has_vowel(3)) {
            replace_suffix(3, "");
            fired = true;
        }
        if (!fired) return;
        if (ends_with("at") || ends_with("bl") || ends_with("iz")) {
            b_.push_back('e');
        } else if (ends_double_consonant()) {
            const char c = b_.back();
            if (c != 'l' && c != 's' && c != 'z') b_.pop_back();
        } else if (measure(b_.size()) == 1 && ends_cvc(0)) {
            b_.push_back('e');
        }
    }

    void step1c() {
        if (ends_with("y") && stem_has_vowel(1)) b_.back() = 'i';
    }

    void step2() {
        struct Rule {
            std::string_view suffix, replacement;
        };
        static constexpr std::array<Rule, 21> kRules = {{
            {"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
            {"anci", "ance"},   {"izer", "ize"},    {"bli", "ble"},
            {"alli", "al"},     {"entli", "ent"},   {"eli", "e"},
            {"ousli", "ous"},   {"ization", "ize"}, {"ation", "ate"},
            {"ator", "ate"},    {"alism", "al"},    {"iveness", "ive"},
            {"fulness", "ful"}, {"ousness", "ous"}, {"aliti", "al"},
            {"iviti", "ive"},   {"biliti", "ble"},  {"logi", "log"},
        }};
        for (const Rule& r : kRules) {
            if (rule(r.suffix, r.replacement, 0)) return;
        }
    }

    void step3() {
        struct Rule {
            std::string_view suffix, replacement;
        };
        static constexpr std::array<Rule, 7> kRules = {{
            {"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
            {"ical", "ic"},  {"ful", ""},   {"ness", ""},
        }};
        for (const Rule& r : kRules) {
            if (rule(r.suffix, r.replacement, 0)) return;
        }
    }

    void step4() {
        static constexpr std::array<std::string_view, 18> kSuffixes = {
            "al",   "ance", "ence", "er",  "ic",  "able", "ible", "ant",
            "ement", "ment", "ent",  "ou",  "ism", "ate",  "iti",  "ous",
            "ive",  "ize"};
        for (std::string_view suffix : kSuffixes) {
            if (ends_with(suffix)) {
                if (measure_of_stem(suffix.size()) > 1) {
                    replace_suffix(suffix.size(), "");
                }
                return;
            }
        }
        // (m>1 and (*S or *T)) ion ->
        if (ends_with("ion") && measure_of_stem(3) > 1) {
            const std::size_t len = b_.size() - 3;
            if (len > 0 && (b_[len - 1] == 's' || b_[len - 1] == 't')) {
                replace_suffix(3, "");
            }
        }
    }

    void step5a() {
        if (!ends_with("e")) return;
        const int m = measure_of_stem(1);
        if (m > 1 || (m == 1 && !ends_cvc(1))) replace_suffix(1, "");
    }

    void step5b() {
        if (ends_with("ll") && measure(b_.size()) > 1) b_.pop_back();
    }
};

}  // namespace

std::string porter_stem(std::string_view word) {
    return PorterStemmer(word).stem();
}

TermHistogram extract_term_histogram(std::string_view text) {
    TermHistogram histogram;
    for (const std::string& token : tokenize(text)) {
        if (is_stop_word(token)) continue;
        ++histogram[porter_stem(token)];
    }
    return histogram;
}

}  // namespace mie::features
