#include "features/feature.hpp"

#include <stdexcept>

#include "kernels/kernels.hpp"

namespace mie::features {

double squared_distance(const FeatureVec& a, const FeatureVec& b) {
    if (a.size() != b.size()) {
        throw std::invalid_argument("squared_distance: dimension mismatch");
    }
    // Dispatched SIMD kernel; every level computes the same canonical
    // 4-wide blocked summation, so results are bitwise-identical whether
    // this runs scalar (mobile fallback) or AVX2 (server training/search).
    return kernels::table().l2_squared(a.data(), b.data(), a.size());
}

double euclidean_distance(const FeatureVec& a, const FeatureVec& b) {
    return std::sqrt(squared_distance(a, b));
}

double norm(const FeatureVec& v) {
    return std::sqrt(kernels::table().dot(v.data(), v.data(), v.size()));
}

void normalize(FeatureVec& v) {
    const double n = norm(v);
    if (n == 0.0) return;
    for (float& x : v) x = static_cast<float>(x / n);
}

}  // namespace mie::features
