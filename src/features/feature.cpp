#include "features/feature.hpp"

#include <stdexcept>

namespace mie::features {

double squared_distance(const FeatureVec& a, const FeatureVec& b) {
    if (a.size() != b.size()) {
        throw std::invalid_argument("squared_distance: dimension mismatch");
    }
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = static_cast<double>(a[i]) - b[i];
        sum += d * d;
    }
    return sum;
}

double euclidean_distance(const FeatureVec& a, const FeatureVec& b) {
    return std::sqrt(squared_distance(a, b));
}

double norm(const FeatureVec& v) {
    double sum = 0.0;
    for (float x : v) sum += static_cast<double>(x) * x;
    return std::sqrt(sum);
}

void normalize(FeatureVec& v) {
    const double n = norm(v);
    if (n == 0.0) return;
    for (float& x : v) x = static_cast<float>(x / n);
}

}  // namespace mie::features
