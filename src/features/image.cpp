#include "features/image.hpp"

#include <algorithm>
#include <stdexcept>

namespace mie::features {

Image::Image(int width, int height) : width_(width), height_(height) {
    if (width <= 0 || height <= 0) {
        throw std::invalid_argument("Image: non-positive dimensions");
    }
    pixels_.assign(static_cast<std::size_t>(width) * height, 0.0f);
}

float Image::at_clamped(int x, int y) const {
    x = std::clamp(x, 0, width_ - 1);
    y = std::clamp(y, 0, height_ - 1);
    return at(x, y);
}

IntegralImage::IntegralImage(const Image& image)
    : width_(image.width()),
      height_(image.height()),
      table_(static_cast<std::size_t>(width_ + 1) * (height_ + 1), 0.0) {
    for (int y = 0; y < height_; ++y) {
        double row_sum = 0.0;
        for (int x = 0; x < width_; ++x) {
            row_sum += image.at(x, y);
            table_[static_cast<std::size_t>(y + 1) * (width_ + 1) + x + 1] =
                table(x + 1, y) + row_sum;
        }
    }
}

double IntegralImage::box_sum(int x0, int y0, int x1, int y1) const {
    x0 = std::max(x0, 0);
    y0 = std::max(y0, 0);
    x1 = std::min(x1, width_ - 1);
    y1 = std::min(y1, height_ - 1);
    if (x0 > x1 || y0 > y1) return 0.0;
    return table(x1 + 1, y1 + 1) - table(x0, y1 + 1) - table(x1 + 1, y0) +
           table(x0, y0);
}

}  // namespace mie::features
