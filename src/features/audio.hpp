// Audio feature extraction.
//
// The paper's dense-media examples are "images, audio, and video" (§IV-B);
// its prototype covers images, and this module adds the audio modality the
// design anticipates. Descriptors are classic frame-based spectral
// features: each analysis frame yields log-energies in geometrically
// spaced frequency bands (Goertzel filters — a tiny DFT specialized to the
// bands we need) plus their deltas against the previous frame, giving a
// 64-dim dense descriptor compatible with the repository's Dense-DPE key.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "features/feature.hpp"

namespace mie::features {

struct AudioFeatureParams {
    std::size_t frame_size = 512;   ///< samples per analysis frame
    std::size_t hop = 256;          ///< frame step
    std::size_t bands = 32;         ///< spectral bands (descriptor = 2x)
    double sample_rate = 8000.0;
    double min_hz = 80.0;           ///< lowest band center
    double max_hz = 3600.0;         ///< highest band center
};

/// Descriptor dimensionality for given params (bands + deltas).
constexpr std::size_t audio_descriptor_dims(const AudioFeatureParams& p) {
    return 2 * p.bands;
}

/// Extracts one L2-normalized descriptor per frame (empty input or input
/// shorter than one frame yields no descriptors). Frames with negligible
/// energy are skipped, mirroring the flat-patch behaviour of SURF.
std::vector<FeatureVec> extract_audio_descriptors(
    std::span<const float> waveform,
    const AudioFeatureParams& params = AudioFeatureParams{});

}  // namespace mie::features
