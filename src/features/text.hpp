// Text feature extraction: tokenization, stop-word removal, Porter stemming,
// and keyword-frequency histograms.
//
// The paper's prototype performs "standard keyword stemming, stop-words
// removal, and histogram extraction" on the client before Sparse-DPE
// encoding (§VI). This module implements that pipeline from scratch,
// including the full Porter (1980) stemming algorithm.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace mie::features {

/// Lowercases and splits `text` on non-alphabetic characters; tokens
/// shorter than 2 characters are dropped.
std::vector<std::string> tokenize(std::string_view text);

/// True if `word` (lowercase) is an English stop word.
bool is_stop_word(std::string_view word);

/// Porter stemming algorithm (M.F. Porter, 1980), steps 1a through 5b.
/// Input must be lowercase alphabetic.
std::string porter_stem(std::string_view word);

/// Keyword -> frequency histogram of a document.
using TermHistogram = std::map<std::string, std::uint32_t>;

/// Full text pipeline: tokenize, drop stop words, stem, count.
TermHistogram extract_term_histogram(std::string_view text);

}  // namespace mie::features
