// U-SURF descriptor with dense-pyramid keypoint sampling.
//
// The paper's prototype uses the SURF descriptor (Bay et al., ECCV'06) with
// Dense Pyramid feature detection (Lazebnik et al., CVPR'06) — §VI. This
// module reproduces that pipeline from scratch:
//   * keypoints are sampled on a regular grid at several pyramid scales
//     (no interest-point detection, exactly the "dense" strategy);
//   * each keypoint yields the upright SURF ("U-SURF") 64-dim descriptor:
//     the 20s x 20s patch around the point is split into 4x4 subregions,
//     each contributing (Σdx, Σdy, Σ|dx|, Σ|dy|) of Haar wavelet responses
//     computed with integral-image box filters;
//   * descriptors are L2-normalized.
#pragma once

#include <vector>

#include "features/feature.hpp"
#include "features/image.hpp"

namespace mie::features {

/// A sampled keypoint: position in pixels and SURF scale s.
struct Keypoint {
    float x = 0.0f;
    float y = 0.0f;
    float scale = 1.2f;
};

/// Parameters for the dense pyramid sampler.
struct DensePyramidParams {
    int levels = 3;          ///< number of pyramid levels
    int base_stride = 12;    ///< grid stride at level 0, in pixels
    float base_scale = 1.2f; ///< SURF scale at level 0
    float level_factor = 1.6f; ///< stride/scale multiplier per level
};

/// Samples keypoints on a multi-scale grid covering the image interior.
std::vector<Keypoint> dense_pyramid_keypoints(int width, int height,
                                              const DensePyramidParams& params);

/// Computes 64-dim U-SURF descriptors.
class SurfExtractor {
public:
    static constexpr std::size_t kDescriptorSize = 64;

    /// Computes the descriptor of a single keypoint.
    FeatureVec describe(const IntegralImage& integral,
                        const Keypoint& kp) const;

    /// Computes descriptors for all keypoints.
    std::vector<FeatureVec> describe_all(
        const Image& image, const std::vector<Keypoint>& keypoints) const;

    /// Full pipeline: dense pyramid sampling + description.
    std::vector<FeatureVec> extract(
        const Image& image,
        const DensePyramidParams& params = DensePyramidParams{}) const;
};

}  // namespace mie::features
