#include "crypto/bignum.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace mie::crypto {

namespace {
constexpr std::size_t kLimbBits = 32;
constexpr std::uint64_t kLimbBase = 1ULL << kLimbBits;
}  // namespace

BigUint::BigUint(std::uint64_t value) {
    if (value != 0) {
        limbs_.push_back(static_cast<std::uint32_t>(value));
        if (value >> 32) limbs_.push_back(static_cast<std::uint32_t>(value >> 32));
    }
}

void BigUint::trim() {
    while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUint BigUint::from_bytes_be(BytesView bytes) {
    BigUint out;
    for (std::uint8_t b : bytes) {
        out = (out << 8) + BigUint(b);
    }
    return out;
}

BigUint BigUint::from_hex(std::string_view hex) {
    return from_bytes_be(hex_decode(hex.size() % 2 ? "0" + std::string(hex)
                                                   : std::string(hex)));
}

Bytes BigUint::to_bytes_be() const {
    Bytes out;
    out.reserve(limbs_.size() * 4);
    for (auto it = limbs_.rbegin(); it != limbs_.rend(); ++it) {
        for (int shift = 24; shift >= 0; shift -= 8) {
            out.push_back(static_cast<std::uint8_t>(*it >> shift));
        }
    }
    const auto first_nonzero =
        std::find_if(out.begin(), out.end(), [](std::uint8_t b) { return b != 0; });
    out.erase(out.begin(), first_nonzero);
    return out;
}

Bytes BigUint::to_bytes_be(std::size_t width) const {
    Bytes raw = to_bytes_be();
    if (raw.size() > width) {
        throw std::length_error("BigUint: value does not fit in width");
    }
    Bytes out(width - raw.size(), 0);
    out.insert(out.end(), raw.begin(), raw.end());
    return out;
}

std::string BigUint::to_hex() const {
    if (is_zero()) return "0";
    std::string hex = hex_encode(to_bytes_be());
    const auto pos = hex.find_first_not_of('0');
    return hex.substr(pos);
}

std::size_t BigUint::bit_length() const {
    if (limbs_.empty()) return 0;
    return (limbs_.size() - 1) * kLimbBits +
           (kLimbBits - std::countl_zero(limbs_.back()));
}

bool BigUint::bit(std::size_t i) const {
    const std::size_t limb = i / kLimbBits;
    if (limb >= limbs_.size()) return false;
    return (limbs_[limb] >> (i % kLimbBits)) & 1u;
}

std::uint64_t BigUint::low_u64() const {
    std::uint64_t v = 0;
    if (!limbs_.empty()) v = limbs_[0];
    if (limbs_.size() > 1) v |= static_cast<std::uint64_t>(limbs_[1]) << 32;
    return v;
}

int compare(const BigUint& a, const BigUint& b) {
    if (a.limbs_.size() != b.limbs_.size()) {
        return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
    }
    for (std::size_t i = a.limbs_.size(); i-- > 0;) {
        if (a.limbs_[i] != b.limbs_[i]) {
            return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
        }
    }
    return 0;
}

BigUint operator+(const BigUint& a, const BigUint& b) {
    BigUint out;
    const std::size_t n = std::max(a.limbs_.size(), b.limbs_.size());
    out.limbs_.resize(n + 1, 0);
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t sum = carry;
        if (i < a.limbs_.size()) sum += a.limbs_[i];
        if (i < b.limbs_.size()) sum += b.limbs_[i];
        out.limbs_[i] = static_cast<std::uint32_t>(sum);
        carry = sum >> kLimbBits;
    }
    out.limbs_[n] = static_cast<std::uint32_t>(carry);
    out.trim();
    return out;
}

BigUint operator-(const BigUint& a, const BigUint& b) {
    if (compare(a, b) < 0) {
        throw std::underflow_error("BigUint: negative result");
    }
    BigUint out;
    out.limbs_.resize(a.limbs_.size(), 0);
    std::int64_t borrow = 0;
    for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
        std::int64_t diff = static_cast<std::int64_t>(a.limbs_[i]) - borrow;
        if (i < b.limbs_.size()) diff -= b.limbs_[i];
        if (diff < 0) {
            diff += static_cast<std::int64_t>(kLimbBase);
            borrow = 1;
        } else {
            borrow = 0;
        }
        out.limbs_[i] = static_cast<std::uint32_t>(diff);
    }
    out.trim();
    return out;
}

BigUint operator*(const BigUint& a, const BigUint& b) {
    if (a.is_zero() || b.is_zero()) return BigUint();
    BigUint out;
    out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
    for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
        std::uint64_t carry = 0;
        const std::uint64_t ai = a.limbs_[i];
        for (std::size_t j = 0; j < b.limbs_.size(); ++j) {
            const std::uint64_t cur =
                ai * b.limbs_[j] + out.limbs_[i + j] + carry;
            out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
            carry = cur >> kLimbBits;
        }
        std::size_t k = i + b.limbs_.size();
        while (carry != 0) {
            const std::uint64_t cur = out.limbs_[k] + carry;
            out.limbs_[k] = static_cast<std::uint32_t>(cur);
            carry = cur >> kLimbBits;
            ++k;
        }
    }
    out.trim();
    return out;
}

BigUint BigUint::operator<<(std::size_t bits) const {
    if (is_zero() || bits == 0) {
        BigUint out = *this;
        return out;
    }
    const std::size_t limb_shift = bits / kLimbBits;
    const std::size_t bit_shift = bits % kLimbBits;
    BigUint out;
    out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        const std::uint64_t v = static_cast<std::uint64_t>(limbs_[i])
                                << bit_shift;
        out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v);
        out.limbs_[i + limb_shift + 1] |=
            static_cast<std::uint32_t>(v >> kLimbBits);
    }
    out.trim();
    return out;
}

BigUint BigUint::operator>>(std::size_t bits) const {
    const std::size_t limb_shift = bits / kLimbBits;
    const std::size_t bit_shift = bits % kLimbBits;
    if (limb_shift >= limbs_.size()) return BigUint();
    BigUint out;
    out.limbs_.assign(limbs_.size() - limb_shift, 0);
    for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
        std::uint64_t v =
            static_cast<std::uint64_t>(limbs_[i + limb_shift]) >> bit_shift;
        if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
            v |= static_cast<std::uint64_t>(limbs_[i + limb_shift + 1])
                 << (kLimbBits - bit_shift);
        }
        out.limbs_[i] = static_cast<std::uint32_t>(v);
    }
    out.trim();
    return out;
}

std::pair<BigUint, BigUint> BigUint::divmod(const BigUint& a, const BigUint& b) {
    if (b.is_zero()) throw std::domain_error("BigUint: division by zero");
    if (compare(a, b) < 0) return {BigUint(), a};
    if (b.limbs_.size() == 1) {
        // Fast path: single-limb divisor.
        const std::uint64_t d = b.limbs_[0];
        BigUint q;
        q.limbs_.assign(a.limbs_.size(), 0);
        std::uint64_t rem = 0;
        for (std::size_t i = a.limbs_.size(); i-- > 0;) {
            const std::uint64_t cur = (rem << kLimbBits) | a.limbs_[i];
            q.limbs_[i] = static_cast<std::uint32_t>(cur / d);
            rem = cur % d;
        }
        q.trim();
        return {q, BigUint(rem)};
    }

    // Knuth Algorithm D with 32-bit digits.
    const std::size_t shift = std::countl_zero(b.limbs_.back());
    const BigUint u_big = a << shift;
    const BigUint v_big = b << shift;
    const std::size_t n = v_big.limbs_.size();
    const std::size_t m = u_big.limbs_.size() - n;

    std::vector<std::uint32_t> u = u_big.limbs_;
    u.push_back(0);  // u has m+n+1 digits
    const std::vector<std::uint32_t>& v = v_big.limbs_;

    BigUint q;
    q.limbs_.assign(m + 1, 0);

    for (std::size_t j = m + 1; j-- > 0;) {
        // Estimate q_hat = (u[j+n]*B + u[j+n-1]) / v[n-1].
        const std::uint64_t numerator =
            (static_cast<std::uint64_t>(u[j + n]) << kLimbBits) | u[j + n - 1];
        std::uint64_t q_hat = numerator / v[n - 1];
        std::uint64_t r_hat = numerator % v[n - 1];
        while (q_hat >= kLimbBase ||
               q_hat * v[n - 2] > ((r_hat << kLimbBits) | u[j + n - 2])) {
            --q_hat;
            r_hat += v[n - 1];
            if (r_hat >= kLimbBase) break;
        }

        // Multiply-and-subtract: u[j..j+n] -= q_hat * v.
        std::int64_t borrow = 0;
        std::uint64_t carry = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint64_t product = q_hat * v[i] + carry;
            carry = product >> kLimbBits;
            const std::int64_t diff = static_cast<std::int64_t>(u[i + j]) -
                                      static_cast<std::int64_t>(
                                          product & 0xffffffffULL) -
                                      borrow;
            if (diff < 0) {
                u[i + j] = static_cast<std::uint32_t>(diff + kLimbBase);
                borrow = 1;
            } else {
                u[i + j] = static_cast<std::uint32_t>(diff);
                borrow = 0;
            }
        }
        const std::int64_t top = static_cast<std::int64_t>(u[j + n]) -
                                 static_cast<std::int64_t>(carry) - borrow;
        if (top < 0) {
            // q_hat was one too large: add back.
            u[j + n] = static_cast<std::uint32_t>(top + kLimbBase);
            --q_hat;
            std::uint64_t add_carry = 0;
            for (std::size_t i = 0; i < n; ++i) {
                const std::uint64_t sum =
                    static_cast<std::uint64_t>(u[i + j]) + v[i] + add_carry;
                u[i + j] = static_cast<std::uint32_t>(sum);
                add_carry = sum >> kLimbBits;
            }
            u[j + n] = static_cast<std::uint32_t>(u[j + n] + add_carry);
        } else {
            u[j + n] = static_cast<std::uint32_t>(top);
        }
        q.limbs_[j] = static_cast<std::uint32_t>(q_hat);
    }
    q.trim();

    BigUint r;
    r.limbs_.assign(u.begin(), u.begin() + static_cast<std::ptrdiff_t>(n));
    r.trim();
    return {q, r >> shift};
}

BigUint BigUint::mod_mul(const BigUint& a, const BigUint& b,
                         const BigUint& m) {
    return (a * b) % m;
}

BigUint BigUint::mod_pow(const BigUint& base, const BigUint& exp,
                         const BigUint& m) {
    if (m.is_zero() || m == BigUint(1)) {
        throw std::domain_error("BigUint: modulus must be > 1");
    }
    if (!m.is_even()) {
        return Montgomery(m).pow(base, exp);
    }
    // Even modulus: plain square-and-multiply.
    BigUint result(1);
    BigUint b = base % m;
    for (std::size_t i = 0; i < exp.bit_length(); ++i) {
        if (exp.bit(i)) result = mod_mul(result, b, m);
        b = mod_mul(b, b, m);
    }
    return result;
}

BigUint BigUint::mod_inverse(const BigUint& a, const BigUint& m) {
    // Extended Euclid on non-negative values, tracking signs separately.
    BigUint old_r = a % m, r = m;
    BigUint old_s(1), s(0);
    bool old_s_neg = false, s_neg = false;
    while (!r.is_zero()) {
        const auto [q, rem] = divmod(old_r, r);
        old_r = r;
        r = rem;
        // new_s = old_s - q * s (with sign tracking)
        const BigUint qs = q * s;
        BigUint new_s;
        bool new_s_neg;
        if (old_s_neg == s_neg) {
            if (old_s >= qs) {
                new_s = old_s - qs;
                new_s_neg = old_s_neg;
            } else {
                new_s = qs - old_s;
                new_s_neg = !old_s_neg;
            }
        } else {
            new_s = old_s + qs;
            new_s_neg = old_s_neg;
        }
        old_s = s;
        old_s_neg = s_neg;
        s = new_s;
        s_neg = new_s_neg;
    }
    if (old_r != BigUint(1)) {
        throw std::domain_error("BigUint: not invertible");
    }
    BigUint inv = old_s % m;
    if (old_s_neg && !inv.is_zero()) inv = m - inv;
    return inv;
}

BigUint BigUint::gcd(BigUint a, BigUint b) {
    while (!b.is_zero()) {
        BigUint r = a % b;
        a = std::move(b);
        b = std::move(r);
    }
    return a;
}

BigUint BigUint::lcm(const BigUint& a, const BigUint& b) {
    if (a.is_zero() || b.is_zero()) return BigUint();
    return (a / gcd(a, b)) * b;
}

BigUint BigUint::random_below(CtrDrbg& drbg, const BigUint& bound) {
    if (bound.is_zero()) {
        throw std::domain_error("BigUint: random_below(0)");
    }
    const std::size_t bits = bound.bit_length();
    const std::size_t bytes = (bits + 7) / 8;
    while (true) {
        Bytes raw = drbg.generate(bytes);
        // Mask excess high bits to make rejection likely to succeed.
        const std::size_t excess = bytes * 8 - bits;
        raw[0] &= static_cast<std::uint8_t>(0xff >> excess);
        BigUint candidate = from_bytes_be(raw);
        if (candidate < bound) return candidate;
    }
}

bool BigUint::is_probable_prime(const BigUint& n, CtrDrbg& drbg, int rounds) {
    if (n < BigUint(2)) return false;
    for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL,
                            19ULL, 23ULL, 29ULL, 31ULL, 37ULL}) {
        if (n == BigUint(p)) return true;
        if ((n % BigUint(p)).is_zero()) return false;
    }
    // Write n-1 = d * 2^s.
    const BigUint n_minus_1 = n - BigUint(1);
    BigUint d = n_minus_1;
    std::size_t s = 0;
    while (d.is_even()) {
        d = d >> 1;
        ++s;
    }
    const BigUint two(2);
    const BigUint n_minus_3 = n - BigUint(3);
    for (int round = 0; round < rounds; ++round) {
        const BigUint a = random_below(drbg, n_minus_3) + two;  // [2, n-2]
        BigUint x = mod_pow(a, d, n);
        if (x == BigUint(1) || x == n_minus_1) continue;
        bool composite = true;
        for (std::size_t i = 1; i < s; ++i) {
            x = mod_mul(x, x, n);
            if (x == n_minus_1) {
                composite = false;
                break;
            }
        }
        if (composite) return false;
    }
    return true;
}

BigUint BigUint::generate_prime(CtrDrbg& drbg, std::size_t bits) {
    if (bits < 8) throw std::invalid_argument("generate_prime: bits < 8");
    while (true) {
        Bytes raw = drbg.generate((bits + 7) / 8);
        const std::size_t excess = raw.size() * 8 - bits;
        raw[0] &= static_cast<std::uint8_t>(0xff >> excess);
        raw[0] |= static_cast<std::uint8_t>(0x80 >> excess);  // top bit
        raw.back() |= 1;                                      // odd
        BigUint candidate = from_bytes_be(raw);
        if (is_probable_prime(candidate, drbg, 20)) return candidate;
    }
}

// ---------------------------------------------------------------------------
// Montgomery context
// ---------------------------------------------------------------------------

Montgomery::Montgomery(const BigUint& modulus) : n_(modulus) {
    if (n_.is_even() || n_ <= BigUint(1)) {
        throw std::domain_error("Montgomery: modulus must be odd and > 1");
    }
    limbs_ = n_.limbs_.size();

    // n0_inv = -n^{-1} mod 2^32 via Newton iteration.
    const std::uint32_t n0 = n_.limbs_[0];
    std::uint32_t inv = 1;
    for (int i = 0; i < 5; ++i) inv *= 2 - n0 * inv;
    n0_inv_ = ~inv + 1;  // negate mod 2^32

    // R mod n and R^2 mod n by shifting with reduction.
    BigUint r(1);
    for (std::size_t i = 0; i < limbs_ * kLimbBits; ++i) {
        r = r << 1;
        if (r >= n_) r = r - n_;
    }
    r_mod_n_ = r;
    BigUint r2 = r;
    for (std::size_t i = 0; i < limbs_ * kLimbBits; ++i) {
        r2 = r2 << 1;
        if (r2 >= n_) r2 = r2 - n_;
    }
    r2_mod_n_ = r2;
}

std::vector<std::uint32_t> Montgomery::mont_mul(
    const std::vector<std::uint32_t>& a,
    const std::vector<std::uint32_t>& b) const {
    // CIOS Montgomery multiplication; a, b < n, both `limbs_` long.
    const std::size_t s = limbs_;
    std::vector<std::uint32_t> t(s + 2, 0);
    const std::vector<std::uint32_t>& n = n_.limbs_;

    for (std::size_t i = 0; i < s; ++i) {
        // t += a[i] * b
        std::uint64_t carry = 0;
        const std::uint64_t ai = a[i];
        for (std::size_t j = 0; j < s; ++j) {
            const std::uint64_t cur = t[j] + ai * b[j] + carry;
            t[j] = static_cast<std::uint32_t>(cur);
            carry = cur >> kLimbBits;
        }
        std::uint64_t cur = t[s] + carry;
        t[s] = static_cast<std::uint32_t>(cur);
        t[s + 1] = static_cast<std::uint32_t>(cur >> kLimbBits);

        // m = t[0] * n0_inv mod 2^32; t += m * n; t >>= 32
        const std::uint32_t m =
            static_cast<std::uint32_t>(t[0] * n0_inv_);
        carry = 0;
        {
            const std::uint64_t c0 =
                t[0] + static_cast<std::uint64_t>(m) * n[0];
            carry = c0 >> kLimbBits;
        }
        for (std::size_t j = 1; j < s; ++j) {
            const std::uint64_t c =
                t[j] + static_cast<std::uint64_t>(m) * n[j] + carry;
            t[j - 1] = static_cast<std::uint32_t>(c);
            carry = c >> kLimbBits;
        }
        cur = t[s] + carry;
        t[s - 1] = static_cast<std::uint32_t>(cur);
        t[s] = t[s + 1] + static_cast<std::uint32_t>(cur >> kLimbBits);
        t[s + 1] = 0;
    }
    t.resize(s + 1);

    // Conditional subtraction if t >= n.
    bool ge = t[s] != 0;
    if (!ge) {
        ge = true;
        for (std::size_t i = s; i-- > 0;) {
            if (t[i] != n[i]) {
                ge = t[i] > n[i];
                break;
            }
        }
    }
    if (ge) {
        std::int64_t borrow = 0;
        for (std::size_t i = 0; i < s; ++i) {
            std::int64_t diff =
                static_cast<std::int64_t>(t[i]) - n[i] - borrow;
            if (diff < 0) {
                diff += static_cast<std::int64_t>(kLimbBase);
                borrow = 1;
            } else {
                borrow = 0;
            }
            t[i] = static_cast<std::uint32_t>(diff);
        }
    }
    t.resize(s);
    return t;
}

std::vector<std::uint32_t> Montgomery::to_mont(const BigUint& x) const {
    BigUint reduced = x % n_;
    std::vector<std::uint32_t> xr = reduced.limbs_;
    xr.resize(limbs_, 0);
    std::vector<std::uint32_t> r2 = r2_mod_n_.limbs_;
    r2.resize(limbs_, 0);
    return mont_mul(xr, r2);
}

BigUint Montgomery::from_mont(std::vector<std::uint32_t> x) const {
    std::vector<std::uint32_t> one(limbs_, 0);
    one[0] = 1;
    BigUint out;
    out.limbs_ = mont_mul(x, one);
    out.trim();
    return out;
}

BigUint Montgomery::mul(const BigUint& a, const BigUint& b) const {
    return from_mont(mont_mul(to_mont(a), to_mont(b)));
}

BigUint Montgomery::pow(const BigUint& base, const BigUint& exp) const {
    std::vector<std::uint32_t> result = r_mod_n_.limbs_;  // 1 in Mont form
    result.resize(limbs_, 0);
    std::vector<std::uint32_t> b = to_mont(base);
    const std::size_t bits = exp.bit_length();
    for (std::size_t i = 0; i < bits; ++i) {
        if (exp.bit(i)) result = mont_mul(result, b);
        b = mont_mul(b, b);
    }
    return from_mont(std::move(result));
}

}  // namespace mie::crypto
