// SHA-1 (FIPS 180-4). Used as the hash under HMAC-SHA1, matching the paper's
// prototype which instantiated its PRF as HMAC-SHA1. Do not use bare SHA-1
// for collision resistance; here it only ever appears keyed under HMAC.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace mie::crypto {

class Sha1 {
public:
    static constexpr std::size_t kDigestSize = 20;
    static constexpr std::size_t kBlockSize = 64;
    using Digest = std::array<std::uint8_t, kDigestSize>;

    Sha1();

    /// Absorbs `data` into the hash state.
    void update(BytesView data);

    /// Finalizes and returns the digest. The object must not be reused
    /// afterwards without calling reset().
    Digest finalize();

    /// Restores the initial state.
    void reset();

    /// One-shot convenience.
    static Digest hash(BytesView data);

private:
    void process_block(const std::uint8_t* block);

    std::array<std::uint32_t, 5> state_;
    std::array<std::uint8_t, kBlockSize> buffer_;
    std::size_t buffer_len_ = 0;
    std::uint64_t total_len_ = 0;
};

}  // namespace mie::crypto
