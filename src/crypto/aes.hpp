// AES-128/AES-256 block cipher (FIPS 197), encryption direction only.
//
// CTR mode and the DRBG need only the forward permutation, so no inverse
// cipher is implemented. Table-based software implementation; validated
// against the FIPS 197 appendix vectors in the test suite.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace mie::crypto {

class Aes {
public:
    static constexpr std::size_t kBlockSize = 16;
    using Block = std::array<std::uint8_t, kBlockSize>;

    /// Key must be 16 bytes (AES-128) or 32 bytes (AES-256);
    /// throws std::invalid_argument otherwise.
    explicit Aes(BytesView key);

    /// Encrypts one 16-byte block in place.
    void encrypt_block(std::uint8_t* block) const;

    /// Encrypts `in` into a new block.
    Block encrypt_block(const Block& in) const {
        Block out = in;
        encrypt_block(out.data());
        return out;
    }

private:
    std::array<std::uint32_t, 60> round_keys_{};
    int rounds_ = 0;
};

}  // namespace mie::crypto
