// AES-128/AES-256 block cipher (FIPS 197), encryption direction only.
//
// CTR mode and the DRBG need only the forward permutation, so no inverse
// cipher is implemented. Key expansion happens here; the per-block
// permutation is dispatched through src/kernels (AES-NI when the CPU has
// it, the table-based software path otherwise — bitwise-identical either
// way). Validated against the FIPS 197 appendix vectors in the test suite
// at every kernel level.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/secret.hpp"
#include "util/bytes.hpp"

namespace mie::crypto {

class Aes {
public:
    static constexpr std::size_t kBlockSize = 16;
    using Block = std::array<std::uint8_t, kBlockSize>;

    /// Key must be 16 bytes (AES-128) or 32 bytes (AES-256);
    /// throws std::invalid_argument otherwise.
    explicit Aes(BytesView key);

    /// Encrypts one 16-byte block in place.
    void encrypt_block(std::uint8_t* block) const;

    /// Encrypts `in` into a new block.
    Block encrypt_block(const Block& in) const {
        Block out = in;
        encrypt_block(out.data());
        return out;
    }

    /// Expanded key schedule in byte (wire) order, 16 * (rounds() + 1)
    /// bytes — the layout the kernel layer consumes. Exposed so CTR mode
    /// and the DRBG can drive the multi-block keystream kernels directly.
    const std::uint8_t* round_key_bytes() const {
        return round_key_bytes_.get().data();
    }

    /// 10 for AES-128, 14 for AES-256.
    int rounds() const { return rounds_; }

private:
    // 15 round keys (AES-256 worst case), byte order. The expanded
    // schedule is equivalent to the key itself, so it zeroizes on
    // destruction (lint rule R5).
    Zeroizing<std::array<std::uint8_t, 16 * 15>> round_key_bytes_;
    int rounds_ = 0;
};

}  // namespace mie::crypto
