// AES-CTR stream cipher (SP 800-38A). Encryption == decryption.
//
// This is the IND-CPA block-cipher mode the paper uses for data-object
// encryption (AES in CTR mode, §III-A) and for MSSE's encrypted index
// values. A fresh random nonce must be used per message; the convenience
// wrappers in this header prepend the nonce to the ciphertext.
#pragma once

#include "crypto/aes.hpp"
#include "util/bytes.hpp"

namespace mie::crypto {

class AesCtr {
public:
    static constexpr std::size_t kNonceSize = 16;

    /// Key must be 16 or 32 bytes.
    explicit AesCtr(BytesView key) : aes_(key) {}

    /// XORs the keystream for (nonce, starting counter 0) into `data`.
    void transform(BytesView nonce, std::span<std::uint8_t> data) const;

    /// Encrypts and returns nonce || ciphertext.
    Bytes seal(BytesView nonce, BytesView plaintext) const;

    /// Decrypts a buffer produced by seal(); throws std::invalid_argument if
    /// the buffer is shorter than a nonce.
    Bytes open(BytesView sealed) const;

private:
    Aes aes_;
};

}  // namespace mie::crypto
