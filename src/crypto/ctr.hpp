// AES-CTR stream cipher (SP 800-38A). Encryption == decryption.
//
// This is the IND-CPA block-cipher mode the paper uses for data-object
// encryption (AES in CTR mode, §III-A) and for MSSE's encrypted index
// values. A fresh random nonce must be used per message; the convenience
// wrappers in this header prepend the nonce to the ciphertext.
//
// The keystream is produced by the kernel layer (src/kernels): an 8-block
// pipelined AES-NI path with word-wise XOR when the CPU supports it, a
// bitwise-identical software path otherwise. `Stream` exposes the
// incremental multi-block API — call process() repeatedly to encrypt a
// message in arbitrary-sized chunks; the byte stream is identical to a
// single transform() over the concatenation.
#pragma once

#include "crypto/aes.hpp"
#include "crypto/secret.hpp"
#include "util/bytes.hpp"

namespace mie::crypto {

class AesCtr {
public:
    static constexpr std::size_t kNonceSize = 16;

    /// Incremental CTR keystream over one (key, nonce) pair. The counter
    /// occupies the low 8 bytes of the nonce block (big-endian, wrapping
    /// without carrying into the high 8 nonce bytes).
    class Stream {
    public:
        Stream(const Aes& aes, BytesView nonce);

        /// XORs the next `data.size()` keystream bytes into `data`.
        /// Chunk boundaries are arbitrary: block-misaligned calls carry
        /// the partial keystream block over to the next call.
        void process(std::span<std::uint8_t> data);

    private:
        const Aes* aes_;
        Aes::Block counter_;
        // Unconsumed keystream would decrypt the next bytes of any message
        // under this (key, nonce); scrub it with the stream.
        Zeroizing<Aes::Block> keystream_;
        std::size_t keystream_pos_ = Aes::kBlockSize;  // empty
    };

    /// Key must be 16 or 32 bytes.
    explicit AesCtr(BytesView key) : aes_(key) {}

    /// Starts an incremental keystream at (nonce, counter 0).
    Stream stream(BytesView nonce) const { return Stream(aes_, nonce); }

    /// XORs the keystream for (nonce, starting counter 0) into `data`.
    void transform(BytesView nonce, std::span<std::uint8_t> data) const;

    /// Encrypts and returns nonce || ciphertext.
    Bytes seal(BytesView nonce, BytesView plaintext) const;

    /// Decrypts a buffer produced by seal(); throws std::invalid_argument if
    /// the buffer is shorter than a nonce.
    Bytes open(BytesView sealed) const;

private:
    Aes aes_;
};

}  // namespace mie::crypto
