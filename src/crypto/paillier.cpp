#include "crypto/paillier.hpp"

#include <stdexcept>

namespace mie::crypto {

Paillier::Paillier(PaillierPublicKey pub, PaillierPrivateKey priv)
    : pub_(std::move(pub)),
      priv_(std::move(priv)),
      mont_n2_(std::make_shared<Montgomery>(pub_.n_squared)) {}

Paillier Paillier::generate(CtrDrbg& drbg, std::size_t modulus_bits) {
    if (modulus_bits < 64) {
        throw std::invalid_argument("Paillier: modulus too small");
    }
    BigUint p, q, n;
    do {
        p = BigUint::generate_prime(drbg, modulus_bits / 2);
        q = BigUint::generate_prime(drbg, modulus_bits / 2);
        n = p * q;
    } while (p == q || n.bit_length() != modulus_bits);

    const BigUint p1 = p - BigUint(1);
    const BigUint q1 = q - BigUint(1);
    PaillierPublicKey pub{n, n * n};
    PaillierPrivateKey priv;
    priv.lambda = BigUint::lcm(p1, q1);

    // With g = n + 1: L(g^lambda mod n^2) = lambda mod n (up to the L map),
    // so mu = lambda^{-1} mod n; computed generically below for clarity.
    const BigUint g = n + BigUint(1);
    const BigUint x = BigUint::mod_pow(g, priv.lambda, pub.n_squared);
    const BigUint l = (x - BigUint(1)) / n;
    priv.mu = BigUint::mod_inverse(l, n);

    return Paillier(std::move(pub), std::move(priv));
}

BigUint Paillier::encrypt(const BigUint& m, CtrDrbg& drbg) const {
    if (m >= pub_.n) {
        throw std::invalid_argument("Paillier: plaintext >= n");
    }
    BigUint r;
    do {
        r = BigUint::random_below(drbg, pub_.n);
    } while (r.is_zero() || BigUint::gcd(r, pub_.n) != BigUint(1));

    // g^m = (1 + n)^m = 1 + m*n (mod n^2)
    const BigUint gm = (BigUint(1) + m * pub_.n) % pub_.n_squared;
    const BigUint rn = mont_n2_->pow(r, pub_.n);
    return mont_n2_->mul(gm, rn);
}

BigUint Paillier::decrypt(const BigUint& c) const {
    if (c >= pub_.n_squared) {
        throw std::invalid_argument("Paillier: ciphertext out of range");
    }
    const BigUint x = mont_n2_->pow(c, priv_.lambda);
    const BigUint l = (x - BigUint(1)) / pub_.n;
    return BigUint::mod_mul(l, priv_.mu, pub_.n);
}

BigUint Paillier::add(const BigUint& ca, const BigUint& cb) const {
    return mont_n2_->mul(ca, cb);
}

BigUint Paillier::scalar_mul(const BigUint& ca, const BigUint& k) const {
    return mont_n2_->pow(ca, k);
}

Bytes Paillier::serialize_ciphertext(const BigUint& c) const {
    return c.to_bytes_be(pub_.ciphertext_bytes());
}

BigUint Paillier::parse_ciphertext(BytesView bytes) const {
    return BigUint::from_bytes_be(bytes);
}

}  // namespace mie::crypto
