#include "crypto/rsa.hpp"

#include <stdexcept>

#include "crypto/sha256.hpp"

namespace mie::crypto {

namespace {
constexpr std::size_t kHashLen = Sha256::kDigestSize;
}

Bytes RsaPublicKey::serialize() const {
    // Self-contained framing (crypto must not depend on net/): two
    // length-prefixed big-endian integers.
    Bytes out;
    const Bytes n_bytes = n.to_bytes_be();
    const Bytes e_bytes = e.to_bytes_be();
    append_le<std::uint32_t>(out, static_cast<std::uint32_t>(n_bytes.size()));
    out.insert(out.end(), n_bytes.begin(), n_bytes.end());
    append_le<std::uint32_t>(out, static_cast<std::uint32_t>(e_bytes.size()));
    out.insert(out.end(), e_bytes.begin(), e_bytes.end());
    return out;
}

RsaPublicKey RsaPublicKey::deserialize(BytesView data) {
    RsaPublicKey key;
    const auto n_len = read_le<std::uint32_t>(data, 0);
    if (data.size() < 4 + n_len + 4) {
        throw std::out_of_range("RsaPublicKey: truncated");
    }
    key.n = BigUint::from_bytes_be(data.subspan(4, n_len));
    const auto e_len = read_le<std::uint32_t>(data, 4 + n_len);
    if (data.size() < 8 + n_len + e_len) {
        throw std::out_of_range("RsaPublicKey: truncated");
    }
    key.e = BigUint::from_bytes_be(data.subspan(8 + n_len, e_len));
    return key;
}

RsaKeyPair RsaKeyPair::generate(CtrDrbg& drbg, std::size_t modulus_bits) {
    if (modulus_bits < 512) {
        throw std::invalid_argument("RsaKeyPair: modulus too small");
    }
    const BigUint e(65537);
    while (true) {
        const BigUint p = BigUint::generate_prime(drbg, modulus_bits / 2);
        const BigUint q = BigUint::generate_prime(drbg, modulus_bits / 2);
        if (p == q) continue;
        const BigUint n = p * q;
        if (n.bit_length() != modulus_bits) continue;
        const BigUint phi = (p - BigUint(1)) * (q - BigUint(1));
        if (BigUint::gcd(e, phi) != BigUint(1)) continue;
        const BigUint d = BigUint::mod_inverse(e, phi);
        return RsaKeyPair(RsaPublicKey{n, e}, RsaPrivateKey{n, d});
    }
}

Bytes mgf1_sha256(BytesView seed, std::size_t length) {
    Bytes mask;
    mask.reserve(length);
    std::uint32_t counter = 0;
    while (mask.size() < length) {
        Sha256 hash;
        hash.update(seed);
        std::uint8_t counter_be[4];
        store_be<std::uint32_t>(counter_be, counter);
        hash.update(BytesView(counter_be, 4));
        const auto block = hash.finalize();
        const std::size_t take = std::min(kHashLen, length - mask.size());
        mask.insert(mask.end(), block.begin(), block.begin() + take);
        ++counter;
    }
    return mask;
}

Bytes rsa_oaep_encrypt(const RsaPublicKey& key, BytesView message,
                       CtrDrbg& drbg) {
    const std::size_t k = key.modulus_bytes();
    if (k < 2 * kHashLen + 2 || message.size() > k - 2 * kHashLen - 2) {
        throw std::invalid_argument("rsa_oaep_encrypt: message too long");
    }
    // EME-OAEP encoding (label = empty): DB = lHash || PS || 0x01 || M,
    // with |DB| = k - hLen - 1.
    const auto l_hash = Sha256::hash({});
    Bytes db(l_hash.begin(), l_hash.end());
    db.resize(k - kHashLen - 2 - message.size(), 0);  // PS zeros
    db.push_back(0x01);
    db.insert(db.end(), message.begin(), message.end());

    const Bytes seed = drbg.generate(kHashLen);
    const Bytes db_mask = mgf1_sha256(seed, db.size());
    xor_into(std::span(db), db_mask);
    Bytes masked_seed = seed;
    const Bytes seed_mask = mgf1_sha256(db, kHashLen);
    xor_into(std::span(masked_seed), seed_mask);

    Bytes em;
    em.reserve(k);
    em.push_back(0x00);
    em.insert(em.end(), masked_seed.begin(), masked_seed.end());
    em.insert(em.end(), db.begin(), db.end());

    const BigUint m = BigUint::from_bytes_be(em);
    return BigUint::mod_pow(m, key.e, key.n).to_bytes_be(k);
}

Bytes rsa_oaep_decrypt(const RsaPrivateKey& key, BytesView ciphertext) {
    const std::size_t k = (key.n.bit_length() + 7) / 8;
    if (ciphertext.size() != k || k < 2 * kHashLen + 2) {
        throw std::invalid_argument("rsa_oaep_decrypt: bad ciphertext");
    }
    const BigUint c = BigUint::from_bytes_be(ciphertext);
    if (c >= key.n) {
        throw std::invalid_argument("rsa_oaep_decrypt: bad ciphertext");
    }
    const Bytes em = BigUint::mod_pow(c, key.d, key.n).to_bytes_be(k);
    if (em[0] != 0x00) {
        throw std::invalid_argument("rsa_oaep_decrypt: bad padding");
    }
    Bytes masked_seed(em.begin() + 1, em.begin() + 1 + kHashLen);
    Bytes db(em.begin() + 1 + kHashLen, em.end());

    const Bytes seed_mask = mgf1_sha256(db, kHashLen);
    xor_into(std::span(masked_seed), seed_mask);
    const Bytes db_mask = mgf1_sha256(masked_seed, db.size());
    xor_into(std::span(db), db_mask);

    const auto l_hash = Sha256::hash({});
    if (!ct_equal(BytesView(db.data(), kHashLen),
                  BytesView(l_hash.data(), kHashLen))) {
        throw std::invalid_argument("rsa_oaep_decrypt: bad padding");
    }
    std::size_t index = kHashLen;
    while (index < db.size() && db[index] == 0x00) ++index;
    if (index == db.size() || db[index] != 0x01) {
        throw std::invalid_argument("rsa_oaep_decrypt: bad padding");
    }
    return Bytes(db.begin() + static_cast<std::ptrdiff_t>(index + 1),
                 db.end());
}

namespace {
/// EMSA-PKCS1-v1_5-style encoding of SHA-256(message) into k bytes.
Bytes emsa_encode(BytesView message, std::size_t k) {
    const auto digest = Sha256::hash(message);
    if (k < kHashLen + 11) {
        throw std::invalid_argument("rsa_sign: modulus too small");
    }
    Bytes em;
    em.reserve(k);
    em.push_back(0x00);
    em.push_back(0x01);
    em.insert(em.end(), k - kHashLen - 3, 0xff);
    em.push_back(0x00);
    em.insert(em.end(), digest.begin(), digest.end());
    return em;
}
}  // namespace

Bytes rsa_sign(const RsaPrivateKey& key, BytesView message) {
    const std::size_t k = (key.n.bit_length() + 7) / 8;
    const BigUint m = BigUint::from_bytes_be(emsa_encode(message, k));
    return BigUint::mod_pow(m, key.d, key.n).to_bytes_be(k);
}

bool rsa_verify(const RsaPublicKey& key, BytesView message,
                BytesView signature) {
    const std::size_t k = key.modulus_bytes();
    if (signature.size() != k) return false;
    const BigUint s = BigUint::from_bytes_be(signature);
    if (s >= key.n) return false;
    const Bytes em = BigUint::mod_pow(s, key.e, key.n).to_bytes_be(k);
    return ct_equal(em, emsa_encode(message, k));
}

}  // namespace mie::crypto
