// Paillier additively-homomorphic public-key encryption (Paillier, 1999).
//
// Hom-MSSE (paper appendix, Fig. 8) encrypts index frequencies and update
// counters under Paillier so the cloud can add to them and compute TF-IDF
// scores without learning the values. Properties used:
//   Enc(a) * Enc(b) mod n^2        = Enc(a + b)
//   Enc(a) ^ k     mod n^2         = Enc(a * k)
// We use the standard g = n + 1 optimization, so encryption is
// (1 + m*n) * r^n mod n^2.
#pragma once

#include <memory>

#include "crypto/bignum.hpp"
#include "crypto/drbg.hpp"
#include "util/bytes.hpp"

namespace mie::crypto {

struct PaillierPublicKey {
    BigUint n;         // modulus
    BigUint n_squared;  // n^2, cached

    /// Serialized size of one ciphertext in bytes.
    std::size_t ciphertext_bytes() const { return (n_squared.bit_length() + 7) / 8; }
};

struct PaillierPrivateKey {
    SecretBigUint lambda;  // lcm(p-1, q-1)
    SecretBigUint mu;      // (L(g^lambda mod n^2))^{-1} mod n
};

class Paillier {
public:
    /// Generates a fresh key pair with an `n` of `modulus_bits` bits.
    /// 512/1024 bits are typical for simulation; 2048+ for real deployments.
    static Paillier generate(CtrDrbg& drbg, std::size_t modulus_bits);

    /// Reconstructs from existing key material.
    Paillier(PaillierPublicKey pub, PaillierPrivateKey priv);

    const PaillierPublicKey& public_key() const { return pub_; }

    /// Encrypts m (must be < n) with fresh randomness from `drbg`.
    BigUint encrypt(const BigUint& m, CtrDrbg& drbg) const;

    /// Decrypts a ciphertext to the plaintext in [0, n).
    BigUint decrypt(const BigUint& c) const;

    /// Homomorphic addition: returns Enc(a + b) given Enc(a), Enc(b).
    BigUint add(const BigUint& ca, const BigUint& cb) const;

    /// Homomorphic scalar multiplication: returns Enc(a * k) given Enc(a).
    BigUint scalar_mul(const BigUint& ca, const BigUint& k) const;

    /// Serializes a ciphertext to fixed-width big-endian bytes.
    Bytes serialize_ciphertext(const BigUint& c) const;

    /// Parses a ciphertext serialized by serialize_ciphertext().
    BigUint parse_ciphertext(BytesView bytes) const;

private:
    PaillierPublicKey pub_;
    PaillierPrivateKey priv_;
    std::shared_ptr<const Montgomery> mont_n2_;  // shared: Paillier is copyable
};

}  // namespace mie::crypto
