// Secret-holding containers with guaranteed zeroization.
//
// The MIE security argument (paper §III-B, §IV) assumes key material stays
// secret; a freed-but-unscrubbed buffer breaks that assumption against any
// adversary who can read process memory after the fact (core dumps, swap,
// reused allocations). Every long-lived secret in this codebase therefore
// lives in one of the wrappers below, and tools/mielint rule R5 rejects
// key-material members that do not.
//
//   SecretBytes   variable-length secrets (PRF keys, seeds, master secrets).
//                 Move-only: secrets are not silently duplicated; call
//                 clone() when a copy is genuinely needed.
//   Zeroizing<T>  fixed-shape secrets (AES round-key schedules, HMAC
//                 midstates, DRBG state) and secret BigUints. Copyable when
//                 T is — a copy is itself Zeroizing, so hygiene is
//                 preserved.
//
// Both wipe their storage through secure_zero(), a memset the optimizer
// cannot elide, and both print as "[redacted]" on any ostream so a stray
// log statement cannot leak bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <ostream>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/bytes.hpp"

namespace mie::crypto {

/// memset(data, 0, size) behind a compiler barrier: the write is observable
/// as far as the optimizer knows, so it survives dead-store elimination
/// even when the buffer is freed immediately afterwards.
void secure_zero(void* data, std::size_t size);

/// Variable-length secret byte buffer; see the header comment for the
/// ownership contract. Templated on the allocator so tests can capture the
/// backing region at deallocation time and assert it was scrubbed.
template <typename Allocator = std::allocator<std::uint8_t>>
class BasicSecretBytes {
public:
    using Vector = std::vector<std::uint8_t, Allocator>;

    BasicSecretBytes() = default;

    /// Takes ownership of an existing buffer. Implicit on purpose: key
    /// derivation returns `Bytes`, and `key.seed = derive_key(...)` should
    /// promote the result without ceremony. Copies the derivation may have
    /// left behind (reallocations) are outside this object's control.
    BasicSecretBytes(Vector&& bytes) noexcept  // NOLINT(google-explicit-constructor)
        : data_(std::move(bytes)) {}

    /// Copies `view` into fresh secret storage (explicit: a copy of secret
    /// data should be visible at the call site).
    explicit BasicSecretBytes(BytesView view)
        : data_(view.begin(), view.end()) {}

    BasicSecretBytes(const BasicSecretBytes&) = delete;
    BasicSecretBytes& operator=(const BasicSecretBytes&) = delete;

    /// Move leaves the source empty (no residual copy of the secret).
    BasicSecretBytes(BasicSecretBytes&& other) noexcept
        : data_(std::move(other.data_)) {
        other.data_.clear();
    }

    BasicSecretBytes& operator=(BasicSecretBytes&& other) noexcept {
        if (this != &other) {
            wipe();
            data_ = std::move(other.data_);
            other.data_.clear();
        }
        return *this;
    }

    ~BasicSecretBytes() { wipe(); }

    std::size_t size() const noexcept { return data_.size(); }
    bool empty() const noexcept { return data_.empty(); }
    const std::uint8_t* data() const noexcept { return data_.data(); }

    BytesView view() const noexcept {
        return BytesView(data_.data(), data_.size());
    }

    /// Secrets flow into BytesView-taking primitives (HKDF, HMAC, AES
    /// keying) without exposing a mutable handle.
    operator BytesView() const noexcept { return view(); }  // NOLINT

    /// Deliberate duplication of the secret.
    BasicSecretBytes clone() const { return BasicSecretBytes(view()); }

    /// Constant-time equality (length difference folded in branch-free);
    /// secrets must never be compared with memcmp / byte-wise ==.
    friend bool operator==(const BasicSecretBytes& a,
                           const BasicSecretBytes& b) {
        return ct_equal(a.view(), b.view());
    }
    friend bool operator!=(const BasicSecretBytes& a,
                           const BasicSecretBytes& b) {
        return !(a == b);
    }

    /// Redacted in any stream/format path.
    friend std::ostream& operator<<(std::ostream& os,
                                    const BasicSecretBytes& s) {
        return os << "[redacted " << s.size() << " bytes]";
    }

private:
    void wipe() noexcept {
        if (!data_.empty()) secure_zero(data_.data(), data_.size());
    }

    Vector data_;
};

using SecretBytes = BasicSecretBytes<>;

/// Zeroize-on-destruction wrapper for fixed-shape secrets. T is either
/// trivially copyable (wiped bytewise) or provides a `zeroize()` member
/// (BigUint). Copyable when T is; moves wipe the source.
template <typename T>
class Zeroizing {
public:
    Zeroizing() = default;

    Zeroizing(T value) noexcept(  // NOLINT(google-explicit-constructor)
        std::is_nothrow_move_constructible_v<T>)
        : value_(std::move(value)) {}

    Zeroizing(const Zeroizing&) = default;
    Zeroizing& operator=(const Zeroizing&) = default;

    Zeroizing(Zeroizing&& other) noexcept(
        std::is_nothrow_move_constructible_v<T>)
        : value_(std::move(other.value_)) {
        other.wipe();
    }

    Zeroizing& operator=(Zeroizing&& other) noexcept(
        std::is_nothrow_move_assignable_v<T>) {
        if (this != &other) {
            value_ = std::move(other.value_);
            other.wipe();
        }
        return *this;
    }

    ~Zeroizing() { wipe(); }

    T& get() noexcept { return value_; }
    const T& get() const noexcept { return value_; }

    T* operator->() noexcept { return &value_; }
    const T* operator->() const noexcept { return &value_; }

    /// Secrets flow into const-ref-taking primitives unchanged.
    operator const T&() const noexcept { return value_; }  // NOLINT

    /// Redacted in any stream/format path.
    friend std::ostream& operator<<(std::ostream& os, const Zeroizing&) {
        return os << "[redacted]";
    }

private:
    void wipe() noexcept {
        if constexpr (requires(T& t) { t.zeroize(); }) {
            value_.zeroize();
        } else {
            static_assert(std::is_trivially_copyable_v<T>,
                          "Zeroizing<T> needs a trivially copyable T or a "
                          "T::zeroize() member");
            secure_zero(static_cast<void*>(&value_), sizeof(T));
        }
    }

    T value_{};
};

}  // namespace mie::crypto
