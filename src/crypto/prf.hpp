// Pseudo-random function wrappers.
//
// The paper instantiates its PRF as HMAC-SHA1 (§VI). `Prf` is the keyed
// function used for Sparse-DPE tokens and MSSE index labels; outputs are
// full digests, optionally truncated by callers.
#pragma once

#include "crypto/hmac.hpp"
#include "crypto/sha1.hpp"
#include "crypto/sha256.hpp"
#include "util/bytes.hpp"

namespace mie::crypto {

/// HMAC-SHA1 PRF, matching the paper's prototype.
inline Bytes prf_sha1(BytesView key, BytesView input) {
    const auto d = Hmac<Sha1>::mac(key, input);
    return Bytes(d.begin(), d.end());
}

/// HMAC-SHA256 PRF for callers wanting 256-bit outputs.
inline Bytes prf_sha256(BytesView key, BytesView input) {
    const auto d = Hmac<Sha256>::mac(key, input);
    return Bytes(d.begin(), d.end());
}

/// PRF evaluated on a 64-bit counter (little-endian), as used by MSSE to
/// derive index labels l = PRF(k1, ctr).
inline Bytes prf_counter(BytesView key, std::uint64_t counter) {
    Bytes input;
    append_le(input, counter);
    return prf_sha1(key, input);
}

}  // namespace mie::crypto
