// Pseudo-random function wrappers.
//
// The paper instantiates its PRF as HMAC-SHA1 (§VI). `Prf` is the keyed
// function used for Sparse-DPE tokens and MSSE index labels; outputs are
// full digests, optionally truncated by callers.
#pragma once

#include "crypto/hmac.hpp"
#include "crypto/sha1.hpp"
#include "crypto/sha256.hpp"
#include "util/bytes.hpp"

namespace mie::crypto {

/// HMAC-SHA1 PRF, matching the paper's prototype.
inline Bytes prf_sha1(BytesView key, BytesView input) {
    const auto d = Hmac<Sha1>::mac(key, input);
    return Bytes(d.begin(), d.end());
}

/// Keyed HMAC-SHA1 PRF instance for hot loops that evaluate many inputs
/// under one key (per-keyword token derivation, per-counter index labels).
/// Reuses the HMAC ipad/opad midstates cached at keying time, so each
/// evaluation of a short input costs 2 SHA-1 compressions instead of 4.
/// Not thread-safe; keep one instance per thread/loop.
class Prf {
public:
    explicit Prf(BytesView key) : hmac_(key) {}

    Bytes eval(BytesView input) {
        hmac_.reset();
        hmac_.update(input);
        const auto d = hmac_.finalize();
        return Bytes(d.begin(), d.end());
    }

    /// PRF of a 64-bit little-endian counter (MSSE index labels).
    Bytes eval_counter(std::uint64_t counter) {
        std::uint8_t raw[8];
        for (int i = 0; i < 8; ++i) {
            raw[i] = static_cast<std::uint8_t>(counter >> (8 * i));
        }
        return eval(BytesView(raw, 8));
    }

private:
    Hmac<Sha1> hmac_;
};

/// HMAC-SHA256 PRF for callers wanting 256-bit outputs.
inline Bytes prf_sha256(BytesView key, BytesView input) {
    const auto d = Hmac<Sha256>::mac(key, input);
    return Bytes(d.begin(), d.end());
}

/// PRF evaluated on a 64-bit counter (little-endian), as used by MSSE to
/// derive index labels l = PRF(k1, ctr).
inline Bytes prf_counter(BytesView key, std::uint64_t counter) {
    Bytes input;
    append_le(input, counter);
    return prf_sha1(key, input);
}

}  // namespace mie::crypto
