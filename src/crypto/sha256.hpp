// SHA-256 (FIPS 180-4). The default hash for HKDF and HMAC-SHA256-based
// PRFs in this library.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace mie::crypto {

class Sha256 {
public:
    static constexpr std::size_t kDigestSize = 32;
    static constexpr std::size_t kBlockSize = 64;
    using Digest = std::array<std::uint8_t, kDigestSize>;

    Sha256();

    /// Absorbs `data` into the hash state.
    void update(BytesView data);

    /// Finalizes and returns the digest; call reset() before reuse.
    Digest finalize();

    /// Restores the initial state.
    void reset();

    /// One-shot convenience.
    static Digest hash(BytesView data);

private:
    void process_block(const std::uint8_t* block);

    std::array<std::uint32_t, 8> state_;
    std::array<std::uint8_t, kBlockSize> buffer_;
    std::size_t buffer_len_ = 0;
    std::uint64_t total_len_ = 0;
};

}  // namespace mie::crypto
