// The one sanctioned source of nondeterminism in the library.
//
// Everything cryptographic in this codebase is deterministic given its
// seeds — that property is what makes training reproducible, snapshots
// comparable, and the fault-injection soaks bitwise-checkable. The flip
// side is that fresh entropy must enter through exactly one door, so the
// static-analysis rule R1 (tools/mielint) can ban `rand`, `srand`,
// `std::random_device`, `system_clock` and friends everywhere else.
//
// This shim is that door. Seed a CtrDrbg from os_random() at the system
// boundary; never consume OS randomness directly in scheme code.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace mie::crypto::entropy {

/// Gathers `n` bytes of OS entropy (std::random_device). The only call
/// site of a nondeterministic generator in the library; allowlisted for
/// lint rule R1 in tools/mielint/mielint.conf.
Bytes os_random(std::size_t n);

/// Process-unique 64-bit nonce: a monotonic counter, deliberately
/// deterministic so reruns with the same construction order produce the
/// same ids (the idempotency-envelope client ids depend on this for
/// reproducible soak tests). Centralized here so every "needs a unique
/// instance id" site shares one stream.
std::uint64_t instance_nonce();

}  // namespace mie::crypto::entropy
