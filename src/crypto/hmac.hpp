// HMAC (RFC 2104) over any hash with the Sha1/Sha256 interface.
//
// HMAC-SHA1 instantiates the paper's PRF (§VI); HMAC-SHA256 is used where a
// 256-bit output is convenient (key derivation, Sparse-DPE tokens).
#pragma once

#include <array>

#include "util/bytes.hpp"

namespace mie::crypto {

template <typename Hash>
class Hmac {
public:
    static constexpr std::size_t kDigestSize = Hash::kDigestSize;
    using Digest = typename Hash::Digest;

    /// Initializes HMAC with `key` (any length; hashed if over block size).
    explicit Hmac(BytesView key) {
        std::array<std::uint8_t, Hash::kBlockSize> block{};
        if (key.size() > Hash::kBlockSize) {
            const Digest hashed = Hash::hash(key);
            std::copy(hashed.begin(), hashed.end(), block.begin());
        } else {
            std::copy(key.begin(), key.end(), block.begin());
        }
        for (std::size_t i = 0; i < block.size(); ++i) {
            ipad_[i] = block[i] ^ 0x36;
            opad_[i] = block[i] ^ 0x5c;
        }
        inner_.update(BytesView(ipad_.data(), ipad_.size()));
    }

    /// Absorbs message data.
    void update(BytesView data) { inner_.update(data); }

    /// Finalizes the MAC; the object may be reused after reset().
    Digest finalize() {
        const Digest inner_digest = inner_.finalize();
        Hash outer;
        outer.update(BytesView(opad_.data(), opad_.size()));
        outer.update(BytesView(inner_digest.data(), inner_digest.size()));
        return outer.finalize();
    }

    /// Restores the keyed initial state for another message.
    void reset() {
        inner_.reset();
        inner_.update(BytesView(ipad_.data(), ipad_.size()));
    }

    /// One-shot convenience.
    static Digest mac(BytesView key, BytesView data) {
        Hmac h(key);
        h.update(data);
        return h.finalize();
    }

private:
    Hash inner_;
    std::array<std::uint8_t, Hash::kBlockSize> ipad_{};
    std::array<std::uint8_t, Hash::kBlockSize> opad_{};
};

}  // namespace mie::crypto
