// HMAC (RFC 2104) over any hash with the Sha1/Sha256 interface.
//
// HMAC-SHA1 instantiates the paper's PRF (§VI); HMAC-SHA256 is used where a
// 256-bit output is convenient (key derivation, Sparse-DPE tokens).
#pragma once

#include <array>

#include "crypto/secret.hpp"
#include "util/bytes.hpp"

namespace mie::crypto {

template <typename Hash>
class Hmac {
public:
    static constexpr std::size_t kDigestSize = Hash::kDigestSize;
    using Digest = typename Hash::Digest;

    /// Initializes HMAC with `key` (any length; hashed if over block size).
    /// The ipad/opad blocks are compressed once here and the resulting
    /// midstates cached, so every subsequent message costs 2 compressions
    /// instead of 4 — the win for short-message PRF workloads like
    /// per-keyword index-token derivation, which reuse one keyed instance
    /// via reset().
    explicit Hmac(BytesView key) {
        // The padded key block and the xor scratch are key material; both
        // zeroize when keying finishes.
        Zeroizing<std::array<std::uint8_t, Hash::kBlockSize>> block_z;
        auto& block = block_z.get();
        if (key.size() > Hash::kBlockSize) {
            const Zeroizing<Digest> hashed = Hash::hash(key);
            std::copy(hashed.get().begin(), hashed.get().end(),
                      block.begin());
        } else {
            std::copy(key.begin(), key.end(), block.begin());
        }
        Zeroizing<std::array<std::uint8_t, Hash::kBlockSize>> pad_z;
        auto& pad = pad_z.get();
        for (std::size_t i = 0; i < block.size(); ++i) pad[i] = block[i] ^ 0x36;
        inner_.update(BytesView(pad.data(), pad.size()));
        for (std::size_t i = 0; i < block.size(); ++i) pad[i] = block[i] ^ 0x5c;
        outer_keyed_.get().update(BytesView(pad.data(), pad.size()));
        // update() with exactly one block compresses eagerly, so these
        // snapshots hold post-pad midstates, not buffered bytes.
        inner_keyed_ = inner_;
    }

    /// Absorbs message data.
    void update(BytesView data) { inner_.update(data); }

    /// Finalizes the MAC; the object may be reused after reset().
    Digest finalize() {
        const Digest inner_digest = inner_.finalize();
        Zeroizing<Hash> outer = outer_keyed_;
        outer.get().update(
            BytesView(inner_digest.data(), inner_digest.size()));
        return outer.get().finalize();
    }

    /// Restores the keyed initial state for another message from the
    /// cached midstate (no recompression of the padded key block).
    void reset() { inner_ = inner_keyed_.get(); }

    /// One-shot convenience.
    static Digest mac(BytesView key, BytesView data) {
        Hmac h(key);
        h.update(data);
        return h.finalize();
    }

private:
    // The cached midstates are key-equivalent (they let anyone MAC under
    // this key), so they zeroize on destruction (lint rule R5). The
    // running state absorbs public message data on top of the midstate and
    // is reset from inner_keyed_ between messages.
    Hash inner_;                   // running state of the current message
    Zeroizing<Hash> inner_keyed_;  // midstate after compressing key ^ ipad
    Zeroizing<Hash> outer_keyed_;  // midstate after compressing key ^ opad
};

}  // namespace mie::crypto
