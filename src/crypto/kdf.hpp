// HKDF (RFC 5869) over HMAC-SHA256, plus a label-based sub-key helper.
//
// Repository keys in MIE are master secrets from which per-purpose sub-keys
// (Dense-DPE seed, Sparse-DPE PRF key, MSSE k1/k2 derivation keys, ...) are
// derived with distinct labels.
#pragma once

#include <string_view>

#include "util/bytes.hpp"

namespace mie::crypto {

/// HKDF-Extract: PRK = HMAC(salt, ikm).
Bytes hkdf_extract(BytesView salt, BytesView ikm);

/// HKDF-Expand: derives `length` bytes from `prk` and `info`.
/// length must be <= 255 * 32.
Bytes hkdf_expand(BytesView prk, BytesView info, std::size_t length);

/// One-shot labelled sub-key derivation: HKDF(ikm=master, info=label).
Bytes derive_key(BytesView master, std::string_view label,
                 std::size_t length = 32);

}  // namespace mie::crypto
