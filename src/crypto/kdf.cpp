#include "crypto/kdf.hpp"

#include <stdexcept>

#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

namespace mie::crypto {

Bytes hkdf_extract(BytesView salt, BytesView ikm) {
    const auto prk = Hmac<Sha256>::mac(salt, ikm);
    return Bytes(prk.begin(), prk.end());
}

Bytes hkdf_expand(BytesView prk, BytesView info, std::size_t length) {
    constexpr std::size_t kHashLen = Sha256::kDigestSize;
    if (length > 255 * kHashLen) {
        throw std::invalid_argument("hkdf_expand: length too large");
    }
    Bytes out;
    out.reserve(length);
    Bytes t;
    std::uint8_t counter = 1;
    while (out.size() < length) {
        Hmac<Sha256> h(prk);
        h.update(t);
        h.update(info);
        h.update(BytesView(&counter, 1));
        const auto block = h.finalize();
        t.assign(block.begin(), block.end());
        const std::size_t take = std::min(kHashLen, length - out.size());
        out.insert(out.end(), t.begin(), t.begin() + take);
        ++counter;
    }
    return out;
}

Bytes derive_key(BytesView master, std::string_view label,
                 std::size_t length) {
    const Bytes salt = to_bytes("mie-kdf-v1");
    const Bytes prk = hkdf_extract(salt, master);
    return hkdf_expand(prk, to_bytes(label), length);
}

}  // namespace mie::crypto
