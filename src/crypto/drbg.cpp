#include "crypto/drbg.hpp"

#include <cmath>
#include <cstring>
#include <numbers>

#include "crypto/entropy.hpp"
#include "crypto/sha256.hpp"
#include "kernels/kernels.hpp"

namespace mie::crypto {

namespace {
Zeroizing<Sha256::Digest> seed_to_key(BytesView seed) {
    return Sha256::hash(seed);
}
}  // namespace

CtrDrbg::CtrDrbg(BytesView seed)
    : aes_(BytesView(seed_to_key(seed).get())) {}

CtrDrbg CtrDrbg::from_os_entropy() { return CtrDrbg(entropy::os_random(48)); }

void CtrDrbg::reseed(BytesView additional) {
    Zeroizing<std::array<std::uint8_t, 32>> state;
    generate(std::span(state.get()));
    Sha256 hasher;
    hasher.update(BytesView(state.get()));
    hasher.update(additional);
    const Zeroizing<Sha256::Digest> key = hasher.finalize();
    aes_ = Aes(BytesView(key.get()));
    counter_.get().fill(0);
    buffer_pos_ = buffer_.get().size();  // discard buffered keystream
}

void CtrDrbg::refill() {
    // Batch-generate kRefillBlocks keystream blocks: the kernel increments
    // the 128-bit big-endian counter before each encryption, exactly the
    // single-block schedule this DRBG always used, so the output stream is
    // unchanged — AES-NI just pipelines the blocks.
    kernels::table().aes_ctr128_keystream(aes_.round_key_bytes(),
                                          aes_.rounds(), counter_.get().data(),
                                          buffer_.get().data(), kRefillBlocks);
    buffer_pos_ = 0;
}

void CtrDrbg::generate(std::span<std::uint8_t> out) {
    std::size_t offset = 0;
    while (offset < out.size()) {
        if (buffer_pos_ == buffer_.get().size()) refill();
        const std::size_t take = std::min(buffer_.get().size() - buffer_pos_,
                                          out.size() - offset);
        std::memcpy(out.data() + offset, buffer_.get().data() + buffer_pos_,
                    take);
        buffer_pos_ += take;
        offset += take;
    }
}

Bytes CtrDrbg::generate(std::size_t n) {
    Bytes out(n);
    generate(std::span(out));
    return out;
}

std::uint64_t CtrDrbg::next_u64() {
    std::uint8_t raw[8];
    generate(std::span(raw, 8));
    return read_le<std::uint64_t>(BytesView(raw, 8), 0);
}

std::uint64_t CtrDrbg::next_below(std::uint64_t bound) {
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
    std::uint64_t v;
    do {
        v = next_u64();
    } while (v >= limit);
    return v % bound;
}

double CtrDrbg::next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double CtrDrbg::next_gaussian() {
    if (have_spare_gaussian_) {
        have_spare_gaussian_ = false;
        return spare_gaussian_;
    }
    double u1;
    do {
        u1 = next_double();
    } while (u1 <= 0.0);
    const double u2 = next_double();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    spare_gaussian_ = r * std::sin(theta);
    have_spare_gaussian_ = true;
    return r * std::cos(theta);
}

}  // namespace mie::crypto
