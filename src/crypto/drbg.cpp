#include "crypto/drbg.hpp"

#include <cmath>
#include <cstring>
#include <numbers>
#include <random>

#include "crypto/sha256.hpp"
#include "kernels/kernels.hpp"

namespace mie::crypto {

namespace {
Bytes seed_to_key(BytesView seed) {
    const Sha256::Digest d = Sha256::hash(seed);
    return Bytes(d.begin(), d.end());
}
}  // namespace

CtrDrbg::CtrDrbg(BytesView seed) : aes_(seed_to_key(seed)) {}

void CtrDrbg::refill() {
    // Batch-generate kRefillBlocks keystream blocks: the kernel increments
    // the 128-bit big-endian counter before each encryption, exactly the
    // single-block schedule this DRBG always used, so the output stream is
    // unchanged — AES-NI just pipelines the blocks.
    kernels::table().aes_ctr128_keystream(aes_.round_key_bytes(),
                                          aes_.rounds(), counter_.data(),
                                          buffer_.data(), kRefillBlocks);
    buffer_pos_ = 0;
}

void CtrDrbg::generate(std::span<std::uint8_t> out) {
    std::size_t offset = 0;
    while (offset < out.size()) {
        if (buffer_pos_ == buffer_.size()) refill();
        const std::size_t take =
            std::min(buffer_.size() - buffer_pos_, out.size() - offset);
        std::memcpy(out.data() + offset, buffer_.data() + buffer_pos_, take);
        buffer_pos_ += take;
        offset += take;
    }
}

Bytes CtrDrbg::generate(std::size_t n) {
    Bytes out(n);
    generate(std::span(out));
    return out;
}

std::uint64_t CtrDrbg::next_u64() {
    std::uint8_t raw[8];
    generate(std::span(raw, 8));
    return read_le<std::uint64_t>(BytesView(raw, 8), 0);
}

std::uint64_t CtrDrbg::next_below(std::uint64_t bound) {
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
    std::uint64_t v;
    do {
        v = next_u64();
    } while (v >= limit);
    return v % bound;
}

double CtrDrbg::next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double CtrDrbg::next_gaussian() {
    if (have_spare_gaussian_) {
        have_spare_gaussian_ = false;
        return spare_gaussian_;
    }
    double u1;
    do {
        u1 = next_double();
    } while (u1 <= 0.0);
    const double u2 = next_double();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    spare_gaussian_ = r * std::sin(theta);
    have_spare_gaussian_ = true;
    return r * std::cos(theta);
}

Bytes os_random(std::size_t n) {
    std::random_device rd;
    Bytes out(n);
    for (auto& b : out) b = static_cast<std::uint8_t>(rd());
    return out;
}

}  // namespace mie::crypto
