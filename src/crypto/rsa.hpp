// RSA public-key encryption and signatures over the BigUint substrate.
//
// §III-A delegates repository-key distribution to "a key-sharing protocol
// based on public-key authentication"; this module provides that
// substrate: RSAES-OAEP (SHA-256 / MGF1) for key wrapping and a
// deterministic RSASSA signature (EMSA-PKCS1-v1_5 style padding over
// SHA-256, without the ASN.1 DigestInfo header) for sender authentication.
// Used by mie/key_sharing.hpp; key sizes of 1024 bits keep the test suite
// fast — use 3072+ in production.
#pragma once

#include "crypto/bignum.hpp"
#include "crypto/drbg.hpp"
#include "util/bytes.hpp"

namespace mie::crypto {

struct RsaPublicKey {
    BigUint n;
    BigUint e;

    std::size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }

    Bytes serialize() const;
    static RsaPublicKey deserialize(BytesView data);
};

struct RsaPrivateKey {
    BigUint n;        // public modulus, duplicated here for convenience
    SecretBigUint d;  // private exponent
};

class RsaKeyPair {
public:
    /// Generates a key pair with public exponent 65537.
    static RsaKeyPair generate(CtrDrbg& drbg, std::size_t modulus_bits);

    const RsaPublicKey& public_key() const { return public_; }
    const RsaPrivateKey& private_key() const { return private_; }

private:
    RsaKeyPair(RsaPublicKey pub, RsaPrivateKey priv)
        : public_(std::move(pub)), private_(std::move(priv)) {}

    RsaPublicKey public_;
    RsaPrivateKey private_;
};

/// MGF1 mask generation (RFC 8017 B.2.1) over SHA-256.
Bytes mgf1_sha256(BytesView seed, std::size_t length);

/// RSAES-OAEP encryption; message must fit (modulus_bytes - 66).
/// Throws std::invalid_argument otherwise.
Bytes rsa_oaep_encrypt(const RsaPublicKey& key, BytesView message,
                       CtrDrbg& drbg);

/// RSAES-OAEP decryption; throws std::invalid_argument on any padding or
/// length failure (no distinction, to avoid oracle-style error channels).
Bytes rsa_oaep_decrypt(const RsaPrivateKey& key, BytesView ciphertext);

/// Deterministic signature over SHA-256(message).
Bytes rsa_sign(const RsaPrivateKey& key, BytesView message);

/// Verifies a signature produced by rsa_sign.
bool rsa_verify(const RsaPublicKey& key, BytesView message,
                BytesView signature);

}  // namespace mie::crypto
