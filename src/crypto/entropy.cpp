#include "crypto/entropy.hpp"

#include <atomic>
#include <random>

namespace mie::crypto::entropy {

Bytes os_random(std::size_t n) {
    std::random_device rd;
    Bytes out(n);
    for (auto& b : out) b = static_cast<std::uint8_t>(rd());
    return out;
}

std::uint64_t instance_nonce() {
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace mie::crypto::entropy
