// Arbitrary-precision unsigned integers.
//
// Supports the Paillier cryptosystem (Hom-MSSE baseline): addition,
// subtraction, schoolbook multiplication, Knuth Algorithm D division,
// modular exponentiation via Montgomery multiplication, extended-Euclid
// modular inverse, gcd/lcm, Miller–Rabin primality and prime generation.
//
// Limbs are 32-bit stored little-endian with 64-bit intermediates, trading
// some speed for straightforward, auditable carry/borrow handling.
#pragma once

#include <cstdint>
#include <utility>
#include <string>
#include <vector>

#include "crypto/drbg.hpp"
#include "crypto/secret.hpp"
#include "util/bytes.hpp"

namespace mie::crypto {

class BigUint {
public:
    /// Zero.
    BigUint() = default;

    /// From a machine word.
    BigUint(std::uint64_t value);  // NOLINT(google-explicit-constructor)

    /// Parses big-endian bytes (leading zeros allowed).
    static BigUint from_bytes_be(BytesView bytes);

    /// Parses a hex string (no 0x prefix).
    static BigUint from_hex(std::string_view hex);

    /// Serializes to big-endian bytes with no leading zeros ("0" -> empty).
    Bytes to_bytes_be() const;

    /// Serializes to big-endian bytes left-padded to `width` bytes;
    /// throws std::length_error if the value does not fit.
    Bytes to_bytes_be(std::size_t width) const;

    /// Lowercase hex, no leading zeros ("0" for zero).
    std::string to_hex() const;

    bool is_zero() const { return limbs_.empty(); }
    bool is_even() const { return limbs_.empty() || (limbs_[0] & 1u) == 0; }

    /// Number of significant bits (0 for zero).
    std::size_t bit_length() const;

    /// Value of bit `i` (false beyond bit_length).
    bool bit(std::size_t i) const;

    /// Low 64 bits.
    std::uint64_t low_u64() const;

    // Comparison.
    friend int compare(const BigUint& a, const BigUint& b);
    friend bool operator==(const BigUint& a, const BigUint& b) {
        return compare(a, b) == 0;
    }
    friend bool operator!=(const BigUint& a, const BigUint& b) {
        return compare(a, b) != 0;
    }
    friend bool operator<(const BigUint& a, const BigUint& b) {
        return compare(a, b) < 0;
    }
    friend bool operator<=(const BigUint& a, const BigUint& b) {
        return compare(a, b) <= 0;
    }
    friend bool operator>(const BigUint& a, const BigUint& b) {
        return compare(a, b) > 0;
    }
    friend bool operator>=(const BigUint& a, const BigUint& b) {
        return compare(a, b) >= 0;
    }

    // Arithmetic. operator- throws std::underflow_error if b > a.
    friend BigUint operator+(const BigUint& a, const BigUint& b);
    friend BigUint operator-(const BigUint& a, const BigUint& b);
    friend BigUint operator*(const BigUint& a, const BigUint& b);

    /// Quotient and remainder; throws std::domain_error on division by zero.
    static std::pair<BigUint, BigUint> divmod(const BigUint& a,
                                              const BigUint& b);

    friend BigUint operator/(const BigUint& a, const BigUint& b) {
        return divmod(a, b).first;
    }
    friend BigUint operator%(const BigUint& a, const BigUint& b) {
        return divmod(a, b).second;
    }

    BigUint operator<<(std::size_t bits) const;
    BigUint operator>>(std::size_t bits) const;

    /// (a * b) mod m.
    static BigUint mod_mul(const BigUint& a, const BigUint& b,
                           const BigUint& m);

    /// (base ^ exp) mod m. m must be > 1; uses Montgomery form when m is odd.
    static BigUint mod_pow(const BigUint& base, const BigUint& exp,
                           const BigUint& m);

    /// Modular inverse; throws std::domain_error if gcd(a, m) != 1.
    static BigUint mod_inverse(const BigUint& a, const BigUint& m);

    static BigUint gcd(BigUint a, BigUint b);
    static BigUint lcm(const BigUint& a, const BigUint& b);

    /// Uniform value in [0, bound) drawn from `drbg`; bound must be nonzero.
    static BigUint random_below(CtrDrbg& drbg, const BigUint& bound);

    /// Miller–Rabin probable-prime test with `rounds` random bases.
    static bool is_probable_prime(const BigUint& n, CtrDrbg& drbg,
                                  int rounds = 32);

    /// Generates a random prime of exactly `bits` bits (top bit set).
    static BigUint generate_prime(CtrDrbg& drbg, std::size_t bits);

    /// Scrubs the limb storage (compiler-barrier memset) and resets the
    /// value to zero. Zeroizing<BigUint> calls this on destruction, making
    /// `SecretBigUint` the required type for private-key integers
    /// (lint rule R5).
    void zeroize() {
        if (!limbs_.empty()) {
            secure_zero(limbs_.data(),
                        limbs_.size() * sizeof(std::uint32_t));
        }
        limbs_.clear();
    }

private:
    void trim();

    std::vector<std::uint32_t> limbs_;  // little-endian, normalized

    friend class Montgomery;
};

/// A BigUint whose limbs are scrubbed on destruction — the storage type
/// for RSA/Paillier private-key material.
using SecretBigUint = Zeroizing<BigUint>;

/// Montgomery multiplication context for a fixed odd modulus. Exposed so
/// Paillier can amortize the per-modulus precomputation across many
/// operations with the same n^2.
class Montgomery {
public:
    /// Modulus must be odd and > 1.
    explicit Montgomery(const BigUint& modulus);

    /// (base ^ exp) mod modulus.
    BigUint pow(const BigUint& base, const BigUint& exp) const;

    /// (a * b) mod modulus.
    BigUint mul(const BigUint& a, const BigUint& b) const;

    const BigUint& modulus() const { return n_; }

private:
    std::vector<std::uint32_t> mont_mul(
        const std::vector<std::uint32_t>& a,
        const std::vector<std::uint32_t>& b) const;
    std::vector<std::uint32_t> to_mont(const BigUint& x) const;
    BigUint from_mont(std::vector<std::uint32_t> x) const;

    BigUint n_;
    std::size_t limbs_ = 0;      // number of limbs in n
    std::uint32_t n0_inv_ = 0;   // -n^{-1} mod 2^32
    BigUint r_mod_n_;            // R mod n, R = 2^(32*limbs)
    BigUint r2_mod_n_;           // R^2 mod n
};

}  // namespace mie::crypto
