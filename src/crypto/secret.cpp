#include "crypto/secret.hpp"

#include <cstring>

namespace mie::crypto {

void secure_zero(void* data, std::size_t size) {
    std::memset(data, 0, size);
    // Compiler barrier: tells the optimizer the zeroed memory is observed,
    // so the memset above cannot be treated as a dead store even when the
    // buffer is about to be freed.
#if defined(__GNUC__) || defined(__clang__)
    __asm__ __volatile__("" : : "r"(data) : "memory");
#else
    volatile auto* p = static_cast<volatile unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) p[i] = 0;
#endif
}

}  // namespace mie::crypto
