// AES-CTR deterministic random bit generator.
//
// The paper's prototype uses "an AES-based Pseudo-Random Number Generator
// (PRNG) for random number generation" (§VI); this DRBG plays that role and
// also instantiates the PRG G of Dense-DPE's KeyGen (§IV-B): given a short
// seed it expands the matrix A and dither w on demand, keeping repository
// keys O(1).
#pragma once

#include <cstdint>

#include "crypto/aes.hpp"
#include "crypto/secret.hpp"
#include "util/bytes.hpp"

namespace mie::crypto {

class CtrDrbg {
public:
    /// Seeds the generator. The seed is hashed to a 32-byte AES-256 key, so
    /// any seed length is acceptable (but should carry >=128 bits entropy
    /// for cryptographic use).
    explicit CtrDrbg(BytesView seed);

    /// Generator seeded from the OS entropy shim (crypto/entropy.hpp) —
    /// the supported way to get a nondeterministic DRBG.
    static CtrDrbg from_os_entropy();

    /// Rekeys from SHA-256(32 bytes of current output || `additional`) and
    /// restarts the counter; the keystream position resets. Route fresh
    /// entropy in through crypto::entropy::os_random.
    void reseed(BytesView additional);

    /// Fills `out` with pseudo-random bytes.
    void generate(std::span<std::uint8_t> out);

    /// Returns `n` pseudo-random bytes.
    Bytes generate(std::size_t n);

    /// Uniform double in [0, 1) with 53 bits of precision.
    double next_double();

    /// Uniform double in [0, limit).
    double next_double(double limit) { return next_double() * limit; }

    /// Standard normal variate (Box–Muller over DRBG output).
    double next_gaussian();

    /// Uniform uint64.
    std::uint64_t next_u64();

    /// Uniform integer in [0, bound); bound must be > 0.
    std::uint64_t next_below(std::uint64_t bound);

private:
    // Keystream blocks generated per refill; matches the kernel layer's
    // AES-NI pipeline width. The output byte stream is independent of the
    // batch size (block i is always E(counter + i)).
    static constexpr std::size_t kRefillBlocks = 8;

    void refill();

    // DRBG working state is key material: the round keys (inside Aes), the
    // counter, and the buffered keystream together determine all future
    // output, so everything is wrapped for zeroize-on-destruction.
    Aes aes_;
    Zeroizing<Aes::Block> counter_;
    Zeroizing<std::array<std::uint8_t, kRefillBlocks * Aes::kBlockSize>>
        buffer_;
    std::size_t buffer_pos_ =
        kRefillBlocks * Aes::kBlockSize;  // force refill on first use
    bool have_spare_gaussian_ = false;
    double spare_gaussian_ = 0.0;
};

}  // namespace mie::crypto
