#include "crypto/ctr.hpp"

#include <cstring>
#include <stdexcept>

#include "kernels/kernels.hpp"

namespace mie::crypto {

namespace {

Aes::Block make_counter(BytesView nonce) {
    if (nonce.size() != AesCtr::kNonceSize) {
        throw std::invalid_argument("AesCtr: nonce must be 16 bytes");
    }
    Aes::Block counter;
    std::memcpy(counter.data(), nonce.data(), AesCtr::kNonceSize);
    return counter;
}

}  // namespace

AesCtr::Stream::Stream(const Aes& aes, BytesView nonce)
    : aes_(&aes), counter_(make_counter(nonce)) {}

void AesCtr::Stream::process(std::span<std::uint8_t> data) {
    std::size_t offset = 0;

    // Drain keystream left over from a block-misaligned previous call.
    while (keystream_pos_ < Aes::kBlockSize && offset < data.size()) {
        data[offset++] ^= keystream_.get()[keystream_pos_++];
    }

    // Bulk full blocks through the kernel (8-block AES-NI pipeline when
    // available); it advances the counter past every block it consumes.
    const std::size_t bulk =
        ((data.size() - offset) / Aes::kBlockSize) * Aes::kBlockSize;
    if (bulk > 0) {
        kernels::table().aes_ctr64_xor(aes_->round_key_bytes(),
                                       aes_->rounds(), counter_.data(),
                                       data.data() + offset, bulk);
        offset += bulk;
    }

    // Partial tail: generate one keystream block and keep the remainder
    // for the next call.
    if (offset < data.size()) {
        keystream_ = counter_;
        aes_->encrypt_block(keystream_.get().data());
        for (int i = 15; i >= 8; --i) {
            if (++counter_[static_cast<std::size_t>(i)] != 0) break;
        }
        keystream_pos_ = 0;
        while (offset < data.size()) {
            data[offset++] ^= keystream_.get()[keystream_pos_++];
        }
    }
}

void AesCtr::transform(BytesView nonce, std::span<std::uint8_t> data) const {
    Aes::Block counter = make_counter(nonce);
    kernels::table().aes_ctr64_xor(aes_.round_key_bytes(), aes_.rounds(),
                                   counter.data(), data.data(), data.size());
}

Bytes AesCtr::seal(BytesView nonce, BytesView plaintext) const {
    Bytes out;
    out.reserve(kNonceSize + plaintext.size());
    out.insert(out.end(), nonce.begin(), nonce.end());
    out.insert(out.end(), plaintext.begin(), plaintext.end());
    transform(nonce, std::span(out).subspan(kNonceSize));
    return out;
}

Bytes AesCtr::open(BytesView sealed) const {
    if (sealed.size() < kNonceSize) {
        throw std::invalid_argument("AesCtr: sealed buffer too short");
    }
    Bytes out(sealed.begin() + kNonceSize, sealed.end());
    transform(sealed.first(kNonceSize), std::span(out));
    return out;
}

}  // namespace mie::crypto
