#include "crypto/ctr.hpp"

#include <cstring>
#include <stdexcept>

namespace mie::crypto {

void AesCtr::transform(BytesView nonce, std::span<std::uint8_t> data) const {
    if (nonce.size() != kNonceSize) {
        throw std::invalid_argument("AesCtr: nonce must be 16 bytes");
    }
    Aes::Block counter;
    std::memcpy(counter.data(), nonce.data(), kNonceSize);

    std::size_t offset = 0;
    while (offset < data.size()) {
        Aes::Block keystream = counter;
        aes_.encrypt_block(keystream.data());
        const std::size_t take =
            std::min(Aes::kBlockSize, data.size() - offset);
        for (std::size_t i = 0; i < take; ++i) {
            data[offset + i] ^= keystream[i];
        }
        offset += take;
        // Increment the big-endian counter in the low 8 bytes.
        for (int i = 15; i >= 8; --i) {
            if (++counter[static_cast<std::size_t>(i)] != 0) break;
        }
    }
}

Bytes AesCtr::seal(BytesView nonce, BytesView plaintext) const {
    Bytes out;
    out.reserve(kNonceSize + plaintext.size());
    out.insert(out.end(), nonce.begin(), nonce.end());
    out.insert(out.end(), plaintext.begin(), plaintext.end());
    transform(nonce, std::span(out).subspan(kNonceSize));
    return out;
}

Bytes AesCtr::open(BytesView sealed) const {
    if (sealed.size() < kNonceSize) {
        throw std::invalid_argument("AesCtr: sealed buffer too short");
    }
    Bytes out(sealed.begin() + kNonceSize, sealed.end());
    transform(sealed.first(kNonceSize), std::span(out));
    return out;
}

}  // namespace mie::crypto
