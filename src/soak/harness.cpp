#include "soak/harness.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "cluster/client.hpp"
#include "cluster/node.hpp"
#include "cluster/replication.hpp"
#include "cluster/router.hpp"
#include "crypto/secret.hpp"
#include "mie/client.hpp"
#include "mie/keys.hpp"
#include "mie/server.hpp"
#include "mie/wire.hpp"
#include "net/envelope.hpp"
#include "net/error.hpp"
#include "net/faulty.hpp"
#include "net/message.hpp"
#include "net/retry.hpp"
#include "net/tcp.hpp"
#include "net/transport.hpp"
#include "reactor/group_commit.hpp"
#include "reactor/reactor.hpp"
#include "sim/dataset.hpp"
#include "sim/energy.hpp"
#include "store/file.hpp"
#include "util/crc32c.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace mie::soak {
namespace {

namespace fs = std::filesystem;
using cluster::ClusterClient;
using cluster::ClusterSearchResult;
using cluster::Node;
using cluster::NodeOptions;
using cluster::Replicator;
using cluster::RepoSearch;
using cluster::Role;
using cluster::Router;
using cluster::ShardEndpoints;
using reactor::GroupCommitter;
using reactor::ReactorServer;

constexpr int kSoakSchemaVersion = 1;

// ---------------------------------------------------------------------------
// Hosted replicas
// ---------------------------------------------------------------------------

/// One replica hosted the production way: Node + GroupCommitter +
/// ReactorServer on 127.0.0.1. Destroying it is a hard kill (server
/// stops, in-flight connections die).
struct Replica {
    Replica(store::Vfs& vfs, const fs::path& dir, Role role,
            std::size_t pull_batch, std::uint16_t port)
        : node(vfs, dir, make_options(role, pull_batch)),
          committer(node),
          server(node, &committer, is_mutating_request, make_reactor(port)) {
        server.start();
    }

    ~Replica() {
        server.stop();
        committer.stop();
    }

    static NodeOptions make_options(Role role, std::size_t pull_batch) {
        NodeOptions options;
        options.role = role;
        options.max_pull_records = pull_batch;
        return options;
    }

    static reactor::ReactorOptions make_reactor(std::uint16_t port) {
        reactor::ReactorOptions options;
        options.port = port;
        return options;
    }

    Node node;
    GroupCommitter committer;
    ReactorServer server;
};

/// A replica's slot in the cluster: its directory and fault VFS survive
/// crashes of the hosted stack, so power_loss()/restart cycles see the
/// same simulated disk.
struct ReplicaSlot {
    fs::path dir;
    std::unique_ptr<store::FaultInjectingVfs> vfs;
    std::unique_ptr<Replica> hosted;
    /// Incremented per restart; the offsets-monotone oracle applies
    /// within one generation (a crash may legally roll the offset back).
    std::uint64_t generation = 0;
    std::uint64_t last_offset = 0;

    void open(const fs::path& slot_dir, Role role, std::size_t pull_batch,
              std::uint16_t port) {
        dir = slot_dir;
        if (!vfs) {
            vfs = std::make_unique<store::FaultInjectingVfs>(
                store::PosixVfs::instance());
        }
        hosted =
            std::make_unique<Replica>(*vfs, dir, role, pull_batch, port);
        last_offset = hosted->node.acked_lsn();
    }
};

/// Client link stack to one replica: real TCP under seeded fault
/// injection under bounded retries (backoff modeled, not slept).
struct Link {
    Link(std::uint16_t port, const net::FaultPlan& plan)
        : tcp("127.0.0.1", port), faulty(tcp, plan), retry(faulty) {
        retry.set_sleeper([](double) {});
    }

    net::TcpTransport tcp;
    net::FaultyTransport faulty;
    net::RetryingTransport retry;
};

struct Shard {
    ReplicaSlot primary;
    ReplicaSlot follower;
    /// Bootstrapped from the promoted follower after a kill.
    ReplicaSlot replacement;
    bool killed = false;
    std::unique_ptr<Link> primary_link;
    std::unique_ptr<Link> follower_link;
};

// ---------------------------------------------------------------------------
// Client-side decorators
// ---------------------------------------------------------------------------

/// Outermost client layer: retries the SAME request bytes until the
/// cluster acks (replaying identical enveloped bytes is what keeps
/// exactly-once intact across spurious timeouts), and records every
/// acked mutation in global ack order for the shadow oracles.
class AckedTransport final : public net::Transport {
public:
    explicit AckedTransport(net::Transport& inner) : inner_(inner) {}

    Bytes call(BytesView request) override {
        const Bytes bytes(request.begin(), request.end());
        for (int attempt = 0;; ++attempt) {
            try {
                Bytes response = inner_.call(bytes);
                retries_ += static_cast<std::uint64_t>(attempt);
                if (is_mutating_request(bytes)) acked_.push_back(bytes);
                return response;
            } catch (const net::TransportError&) {
                if (attempt + 1 >= kMaxAttempts) throw;
                try {
                    inner_.reconnect();
                } catch (const net::TransportError&) {
                    // Dead endpoints stay dead; the routed retry below
                    // triggers the ClusterClient's failover instead.
                }
            }
        }
    }

    void reconnect() override { inner_.reconnect(); }
    double network_seconds() const override {
        return inner_.network_seconds();
    }
    double server_seconds() const override {
        return inner_.server_seconds();
    }

    const std::vector<Bytes>& acked() const { return acked_; }
    std::uint64_t retries() const { return retries_; }

private:
    static constexpr int kMaxAttempts = 64;

    net::Transport& inner_;
    std::vector<Bytes> acked_;
    std::uint64_t retries_ = 0;
};

/// Records the last request/response passing through (used to lift the
/// byte-exact kSearch requests for the scatter/gather oracle).
class CaptureTransport final : public net::Transport {
public:
    explicit CaptureTransport(net::Transport& inner) : inner_(inner) {}

    Bytes call(BytesView request) override {
        last_request_.assign(request.begin(), request.end());
        last_response_ = inner_.call(request);
        return last_response_;
    }

    void reconnect() override { inner_.reconnect(); }
    double network_seconds() const override {
        return inner_.network_seconds();
    }
    double server_seconds() const override {
        return inner_.server_seconds();
    }

    const Bytes& last_request() const { return last_request_; }
    const Bytes& last_response() const { return last_response_; }

private:
    net::Transport& inner_;
    Bytes last_request_;
    Bytes last_response_;
};

// ---------------------------------------------------------------------------
// Small helpers
// ---------------------------------------------------------------------------

/// Repository id a (possibly enveloped) client request routes by.
std::string routed_repo(BytesView request) {
    net::MessageReader reader(net::envelope_inner(request));
    reader.read_u8();  // opcode
    return reader.read_string();
}

/// Nearest-rank percentile over unsorted samples; 0 when empty.
double percentile_ms(std::vector<double> samples, double q) {
    if (samples.empty()) return 0.0;
    std::sort(samples.begin(), samples.end());
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(samples.size())));
    return samples[std::min(rank == 0 ? 0 : rank - 1, samples.size() - 1)];
}

std::string repo_name(std::uint32_t repo) {
    return "soak-repo-" + std::to_string(repo);
}

/// Client-side master secret per (repo, device class). Never sent to the
/// server; the secret-hygiene oracle scans for it (and keys derived from
/// it) in every server artifact.
Bytes master_secret(std::uint32_t repo, bool mobile) {
    return to_bytes(std::string("soak-master-secret-") +
                    (mobile ? "mobile-" : "desktop-") +
                    std::to_string(repo));
}

bool contains_bytes(const Bytes& haystack, const Bytes& needle) {
    if (needle.empty() || haystack.size() < needle.size()) return false;
    return std::search(haystack.begin(), haystack.end(), needle.begin(),
                       needle.end()) != haystack.end();
}

// ---------------------------------------------------------------------------
// The run
// ---------------------------------------------------------------------------

struct RepoClients {
    std::unique_ptr<MieClient> mobile;
    std::unique_ptr<MieClient> desktop;
};

class SoakRun {
public:
    explicit SoakRun(const SoakOptions& options) : options_(options) {
        if (options_.root_dir.empty()) {
            throw std::invalid_argument("soak: root_dir is required");
        }
        if (options_.num_shards == 0) {
            throw std::invalid_argument("soak: need >= 1 shard");
        }
        if (options_.epochs == 0) {
            throw std::invalid_argument("soak: need >= 1 epoch");
        }
    }

    SoakReport run();

private:
    void build_cluster();
    void build_clients();
    void generate_script();
    void setup_repositories();
    void run_epoch(std::size_t epoch);
    void execute_event(const sim::FleetEvent& event);
    void chaos_power_loss();
    void chaos_kill_primary();
    void sync_shard(std::uint32_t shard_index);
    void pump_into(ReplicaSlot& slot, std::uint16_t source_port,
                   std::uint64_t source_last_lsn);
    OracleOutcomes check_oracles();
    bool check_exactly_once();
    bool check_scatter_gather();
    bool check_secrets();
    std::uint32_t final_state_digest();
    Node& shard_truth(Shard& shard);

    SoakOptions options_;
    SplitMix64 chaos_rng_{0};
    sim::FleetScript script_;
    std::vector<Shard> shards_;
    std::unique_ptr<ClusterClient> cluster_;
    std::unique_ptr<AckedTransport> acked_;
    // mielint: allow(R5): element type RepositoryKey is secret-safe (zeroizing)
    std::vector<RepositoryKey> repo_keys_;
    std::vector<sim::FlickrLikeGenerator> generators_;
    std::vector<RepoClients> clients_;

    std::uint32_t kill_shard_ = 0;
    std::uint32_t power_loss_shard_ = 0;
    std::size_t kill_at_event_ = 0;
    std::size_t power_loss_at_event_ = 0;
    bool kill_done_ = false;
    bool power_loss_done_ = false;

    std::size_t events_executed_ = 0;
    std::vector<double> epoch_latencies_ms_;
    std::uint64_t recoveries_ = 0;
    bool offsets_monotone_ = true;
    SoakReport report_;
};

Node& SoakRun::shard_truth(Shard& shard) {
    return shard.killed ? shard.follower.hosted->node
                        : shard.primary.hosted->node;
}

void SoakRun::build_cluster() {
    fs::create_directories(options_.root_dir);
    net::FaultPlan plan;
    plan.rate = options_.fault_rate;
    shards_.resize(options_.num_shards);
    std::vector<ShardEndpoints> endpoints;
    for (std::uint32_t s = 0; s < options_.num_shards; ++s) {
        Shard& shard = shards_[s];
        const fs::path shard_dir =
            options_.root_dir / ("shard-" + std::to_string(s));
        shard.primary.open(shard_dir / "p", Role::kPrimary,
                           options_.pull_batch, 0);
        shard.follower.open(shard_dir / "f", Role::kFollower,
                            options_.pull_batch, 0);
        // Distinct fault streams per link, all derived from the seed.
        plan.seed = options_.seed ^ (0x1000u + 2u * s);
        shard.primary_link = std::make_unique<Link>(
            shard.primary.hosted->server.port(), plan);
        plan.seed = options_.seed ^ (0x1000u + 2u * s + 1u);
        shard.follower_link = std::make_unique<Link>(
            shard.follower.hosted->server.port(), plan);
        endpoints.push_back(ShardEndpoints{&shard.primary_link->retry,
                                           &shard.follower_link->retry});
    }
    cluster_ = std::make_unique<ClusterClient>(std::move(endpoints));
    acked_ = std::make_unique<AckedTransport>(*cluster_);
}

void SoakRun::build_clients() {
    const std::size_t repos = options_.fleet.num_repositories;
    repo_keys_.reserve(repos);
    generators_.reserve(repos);
    clients_.reserve(repos);
    for (std::uint32_t repo = 0; repo < repos; ++repo) {
        repo_keys_.push_back(RepositoryKey::generate(
            to_bytes("soak-repo-key-" + std::to_string(repo)), 64, 64,
            0.7978845608));
        sim::FlickrLikeParams params;
        params.num_classes = 2;
        params.image_size = static_cast<int>(options_.image_size);
        params.seed = options_.seed ^ (0x5EEDu + repo);
        generators_.emplace_back(params);

        RepoClients pair;
        pair.mobile = std::make_unique<MieClient>(
            *acked_, repo_name(repo), repo_keys_[repo],
            master_secret(repo, true),
            sim::DeviceProfile::mobile().cpu_scale);
        pair.desktop = std::make_unique<MieClient>(
            *acked_, repo_name(repo), repo_keys_[repo],
            master_secret(repo, false),
            sim::DeviceProfile::desktop().cpu_scale);
        for (MieClient* client : {pair.mobile.get(), pair.desktop.get()}) {
            client->train_params.tree_branch = 4;
            client->train_params.tree_depth = 2;
        }
        clients_.push_back(std::move(pair));
    }
}

void SoakRun::generate_script() {
    sim::FleetParams fleet = options_.fleet;
    fleet.seed = options_.seed;
    fleet.num_events = options_.fleet.num_events * options_.epochs;
    script_ = sim::FleetScript::generate(fleet);

    chaos_rng_ = SplitMix64(options_.seed ^ 0xC4A05ULL);
    kill_shard_ = static_cast<std::uint32_t>(
        chaos_rng_.next_below(options_.num_shards));
    power_loss_shard_ = options_.num_shards > 1
                            ? (kill_shard_ + 1) % options_.num_shards
                            : kill_shard_;
    // Power loss strikes in the first third, the kill in the last third;
    // on a single shard the order matters (the power-lossed follower must
    // be healthy again before it can be promoted).
    power_loss_at_event_ = script_.events.size() / 3;
    kill_at_event_ = script_.events.size() * 2 / 3;
}

void SoakRun::setup_repositories() {
    for (std::uint32_t repo = 0; repo < options_.fleet.num_repositories;
         ++repo) {
        MieClient& client = *clients_[repo].mobile;
        client.create_repository();
        for (const std::uint64_t id : script_.setup[repo]) {
            client.update(generators_[repo].make(id));
        }
        client.train();
    }
}

void SoakRun::execute_event(const sim::FleetEvent& event) {
    MieClient& client = event.mobile ? *clients_[event.repo].mobile
                                     : *clients_[event.repo].desktop;
    switch (event.kind) {
        case sim::FleetOpKind::kAdd:
        case sim::FleetOpKind::kUpdate:
            client.update(generators_[event.repo].make(event.object_id));
            break;
        case sim::FleetOpKind::kRemove:
            client.remove(event.object_id);
            break;
        case sim::FleetOpKind::kSearch:
            client.search(generators_[event.repo].make(event.object_id),
                          options_.top_k);
            break;
    }
}

void SoakRun::pump_into(ReplicaSlot& slot, std::uint16_t source_port,
                        std::uint64_t source_last_lsn) {
    net::TcpTransport wire("127.0.0.1", source_port);
    Replicator replicator(slot.hosted->node, wire, options_.pull_batch);
    for (;;) {
        const Replicator::PumpResult round = replicator.pump();
        // Offsets-monotone oracle: within a replica generation the acked
        // offset never regresses, and never runs past the source.
        if (round.acked_lsn < slot.last_offset ||
            round.acked_lsn > source_last_lsn) {
            offsets_monotone_ = false;
        }
        slot.last_offset = round.acked_lsn;
        if (round.caught_up) return;
    }
}

void SoakRun::sync_shard(std::uint32_t shard_index) {
    Shard& shard = shards_[shard_index];
    if (!shard.killed) {
        pump_into(shard.follower, shard.primary.hosted->server.port(),
                  shard.primary.hosted->node.durable().durability().last_lsn);
    } else if (shard.replacement.hosted) {
        // The replacement pulls from the surviving replica (promoted or
        // not — the replication feed is role-independent).
        pump_into(shard.replacement, shard.follower.hosted->server.port(),
                  shard.follower.hosted->node.durable().durability().last_lsn);
    }
}

void SoakRun::chaos_power_loss() {
    Shard& shard = shards_[power_loss_shard_];
    if (shard.killed) return;  // single-replica shard: nothing to crash
    ReplicaSlot& slot = shard.follower;
    const std::uint16_t port = slot.hosted->server.port();
    slot.hosted.reset();
    slot.vfs->power_loss();  // roll files back to their synced sizes
    slot.vfs->reset();
    slot.open(slot.dir, Role::kFollower, options_.pull_batch, port);
    ++slot.generation;
    ++recoveries_;
    // Recovery re-pull: the persisted offset may lag the crashed node's
    // memory; the overlap re-ships and dedup absorbs it.
    sync_shard(power_loss_shard_);
}

void SoakRun::chaos_kill_primary() {
    Shard& shard = shards_[kill_shard_];
    // Acked-must-survive discipline: drain replication while the primary
    // is still alive, then kill it for good. (Asynchronous replication
    // cannot promise durability of acked-but-unshipped records; shipping
    // synchronously at the kill point is the soak's stand-in for the
    // quorum ack a production deployment would use.)
    sync_shard(kill_shard_);
    shard.primary.hosted.reset();
    shard.killed = true;
    // Bootstrap a replacement follower from the surviving replica on a
    // fresh directory: a from-zero pull (records or snapshot, the
    // source's retention decides).
    shard.replacement.open(
        options_.root_dir / ("shard-" + std::to_string(kill_shard_)) / "r",
        Role::kFollower, options_.pull_batch, 0);
    ++recoveries_;
    sync_shard(kill_shard_);
}

void SoakRun::run_epoch(std::size_t epoch) {
    const std::size_t per_epoch = options_.fleet.num_events;
    const std::size_t begin = epoch * per_epoch;
    const std::size_t end = begin + per_epoch;
    epoch_latencies_ms_.clear();

    EpochReport out;
    out.epoch = epoch;
    const std::uint64_t retries_before = acked_->retries();
    const std::uint64_t failovers_before = cluster_->stats().failovers;
    const std::uint64_t recoveries_before = recoveries_;

    for (std::size_t i = begin; i < end; ++i) {
        if (options_.power_loss_follower && !power_loss_done_ &&
            i >= power_loss_at_event_) {
            power_loss_done_ = true;
            chaos_power_loss();
        }
        if (options_.kill_primary && !kill_done_ && i >= kill_at_event_) {
            kill_done_ = true;
            chaos_kill_primary();
        }
        const Stopwatch watch;
        execute_event(script_.events[i]);
        epoch_latencies_ms_.push_back(watch.elapsed_seconds() * 1e3);
        ++events_executed_;
    }

    // Quiesce: every surviving follower catches up, then the oracles run
    // over a stable cluster.
    for (std::uint32_t s = 0; s < options_.num_shards; ++s) sync_shard(s);

    out.operations = per_epoch;
    out.acked = per_epoch;  // retry-until-acked: anything less throws
    out.retries = acked_->retries() - retries_before;
    out.failovers = cluster_->stats().failovers - failovers_before;
    out.recoveries = recoveries_ - recoveries_before;
    out.p50_ms = percentile_ms(epoch_latencies_ms_, 0.50);
    out.p95_ms = percentile_ms(epoch_latencies_ms_, 0.95);
    out.p99_ms = percentile_ms(epoch_latencies_ms_, 0.99);
    out.oracles = check_oracles();
    report_.epochs.push_back(out);
}

OracleOutcomes SoakRun::check_oracles() {
    OracleOutcomes outcomes;
    outcomes.exactly_once = check_exactly_once();
    outcomes.scatter_gather = check_scatter_gather();
    outcomes.offsets_monotone = offsets_monotone_;
    outcomes.secrets_redacted = check_secrets();
    return outcomes;
}

bool SoakRun::check_exactly_once() {
    // Rebuild the acked-operations shadow per shard: only operations the
    // fleet saw acknowledged, in acknowledgement order, deduplicated the
    // same way the servers do.
    const Router router(options_.num_shards);
    std::vector<std::unique_ptr<MieServer>> shadows;
    std::vector<std::unique_ptr<net::DedupHandler>> dedups;
    for (std::uint32_t s = 0; s < options_.num_shards; ++s) {
        shadows.push_back(std::make_unique<MieServer>());
        dedups.push_back(std::make_unique<net::DedupHandler>(*shadows[s]));
    }
    for (const Bytes& request : acked_->acked()) {
        dedups[router.shard_of(routed_repo(request))]->handle(request);
    }
    for (std::uint32_t s = 0; s < options_.num_shards; ++s) {
        const Bytes expected = shadows[s]->export_snapshot();
        Shard& shard = shards_[s];
        std::vector<Node*> replicas;
        if (!shard.killed) replicas.push_back(&shard.primary.hosted->node);
        replicas.push_back(&shard.follower.hosted->node);
        if (shard.replacement.hosted) {
            replicas.push_back(&shard.replacement.hosted->node);
        }
        for (Node* node : replicas) {
            if (node->durable().server().export_snapshot() != expected) {
                return false;
            }
        }
    }
    return true;
}

bool SoakRun::check_scatter_gather() {
    // Union reference: one node holding every repository, built from the
    // same acked stream.
    MieServer union_server;
    net::DedupHandler union_dedup(union_server);
    for (const Bytes& request : acked_->acked()) {
        union_dedup.handle(request);
    }
    net::MeteredTransport union_wire(union_dedup,
                                     net::LinkProfile::loopback());
    CaptureTransport capture(union_wire);

    std::vector<RepoSearch> queries;
    std::vector<std::vector<ClusterSearchResult>> reference_lists;
    SplitMix64 probe_rng(options_.seed ^ 0x9CA77E2ULL ^
                         (report_.epochs.size() + 1));
    for (std::size_t p = 0; p < options_.search_probes; ++p) {
        const auto repo = static_cast<std::uint32_t>(
            probe_rng.next_below(options_.fleet.num_repositories));
        // Probe clients share the repository key; their own envelope
        // identity is irrelevant (searches are not enveloped).
        MieClient probe(capture, repo_name(repo), repo_keys_[repo],
                        master_secret(repo, false));
        const sim::MultimodalObject query = generators_[repo].make(
            sim::fleet_object_id(repo, 0xFACE00ULL + p));
        probe.search(query, options_.top_k);
        queries.push_back(RepoSearch{repo_name(repo), capture.last_request()});
        reference_lists.push_back(cluster::parse_search_response(
            repo_name(repo), capture.last_response()));
    }

    const std::size_t union_k = options_.top_k * options_.search_probes;
    const std::vector<ClusterSearchResult> expected =
        cluster::merge_ranked(std::move(reference_lists), union_k);

    // The cluster side rides the faulty links; reads are idempotent, so
    // a whole-scatter retry after an exhausted link is safe.
    std::vector<ClusterSearchResult> got;
    for (int attempt = 0;; ++attempt) {
        try {
            got = cluster_->search_union(queries, union_k);
            break;
        } catch (const net::TransportError&) {
            if (attempt >= 16) throw;
        }
    }

    if (got.size() != expected.size()) return false;
    for (std::size_t i = 0; i < got.size(); ++i) {
        if (got[i].repo_id != expected[i].repo_id ||
            got[i].object_id != expected[i].object_id ||
            got[i].score != expected[i].score ||
            got[i].encrypted_object != expected[i].encrypted_object) {
            return false;
        }
    }
    return true;
}

bool SoakRun::check_secrets() {
    // Client-side secrets that must never reach the server: the per-user
    // master secrets and the per-object data keys derived from them.
    std::vector<Bytes> needles;
    for (std::uint32_t repo = 0; repo < options_.fleet.num_repositories;
         ++repo) {
        for (const bool mobile : {true, false}) {
            Bytes master = master_secret(repo, mobile);
            const DataKeyring ring{Bytes(master)};
            needles.push_back(ring.data_key(sim::fleet_object_id(repo, 0)));
            needles.push_back(ring.data_key(sim::fleet_object_id(repo, 1)));
            needles.push_back(std::move(master));
        }
    }

    // The redaction contract itself: streaming a SecretBytes must never
    // print key material.
    {
        const crypto::SecretBytes secret(BytesView(needles.front()));
        std::ostringstream stream;
        stream << secret;
        const std::string text = stream.str();
        if (text.find("redacted") == std::string::npos) return false;
        if (text.size() > 64) return false;  // suspiciously long = leak
    }

    // Scan every server artifact: on-disk files of every living replica
    // plus their exported snapshots (the "memory dump" stand-in).
    std::vector<Bytes> haystacks;
    const store::PosixVfs& vfs = store::PosixVfs::instance();
    for (Shard& shard : shards_) {
        std::vector<Node*> nodes;
        std::vector<const fs::path*> dirs;
        if (!shard.killed) {
            nodes.push_back(&shard.primary.hosted->node);
            dirs.push_back(&shard.primary.dir);
        }
        nodes.push_back(&shard.follower.hosted->node);
        dirs.push_back(&shard.follower.dir);
        if (shard.replacement.hosted) {
            nodes.push_back(&shard.replacement.hosted->node);
            dirs.push_back(&shard.replacement.dir);
        }
        for (Node* node : nodes) {
            haystacks.push_back(node->durable().server().export_snapshot());
        }
        for (const fs::path* dir : dirs) {
            std::vector<fs::path> files = vfs.list_dir(*dir);
            std::sort(files.begin(), files.end());
            for (const fs::path& file : files) {
                haystacks.push_back(vfs.read_file(file));
            }
        }
    }
    for (const Bytes& haystack : haystacks) {
        for (const Bytes& needle : needles) {
            if (contains_bytes(haystack, needle)) return false;
        }
    }
    return true;
}

std::uint32_t SoakRun::final_state_digest() {
    std::uint32_t state = crc32c_init();
    for (Shard& shard : shards_) {
        const Bytes snapshot =
            shard_truth(shard).durable().server().export_snapshot();
        state = crc32c_update(state, snapshot);
    }
    return crc32c_final(state);
}

SoakReport SoakRun::run() {
    report_ = SoakReport{};
    report_.seed = options_.seed;
    report_.num_shards = options_.num_shards;

    build_cluster();
    build_clients();
    generate_script();
    setup_repositories();

    const Stopwatch total;
    std::vector<double> all_latencies;
    for (std::size_t epoch = 0; epoch < options_.epochs; ++epoch) {
        run_epoch(epoch);
        all_latencies.insert(all_latencies.end(),
                             epoch_latencies_ms_.begin(),
                             epoch_latencies_ms_.end());
    }
    report_.elapsed_seconds = total.elapsed_seconds();

    report_.operations = events_executed_;
    report_.acked = events_executed_;
    report_.retries = acked_->retries();
    report_.failovers = cluster_->stats().failovers;
    report_.recoveries = recoveries_;
    for (Shard& shard : shards_) {
        report_.faults_injected += shard.primary_link->faulty.stats()
                                       .faults_injected;
        report_.faults_injected += shard.follower_link->faulty.stats()
                                       .faults_injected;
        report_.replays_suppressed += shard.follower.hosted->node.durable()
                                          .durability()
                                          .replays_suppressed;
        if (!shard.killed) {
            report_.replays_suppressed += shard.primary.hosted->node
                                              .durable()
                                              .durability()
                                              .replays_suppressed;
        }
    }
    report_.throughput_ops_per_sec =
        report_.elapsed_seconds > 0.0
            ? static_cast<double>(report_.operations) /
                  report_.elapsed_seconds
            : 0.0;
    report_.p50_ms = percentile_ms(all_latencies, 0.50);
    report_.p95_ms = percentile_ms(all_latencies, 0.95);
    report_.p99_ms = percentile_ms(all_latencies, 0.99);
    report_.state_digest = final_state_digest();

    double mobile_mah = 0.0;
    const sim::DeviceProfile mobile_device = sim::DeviceProfile::mobile();
    // mielint: allow(R3): clients_ is a std::vector; the sum is order-free
    for (const RepoClients& pair : clients_) {
        mobile_mah +=
            sim::energy_of(pair.mobile->meter(), mobile_device).total_mah();
    }
    report_.mobile_energy_mah = mobile_mah;
    return report_;
}

}  // namespace

bool SoakReport::all_oracles_green() const {
    if (epochs.empty()) return false;
    for (const EpochReport& epoch : epochs) {
        if (!epoch.oracles.all_green()) return false;
    }
    return true;
}

std::string SoakReport::to_json() const {
    std::ostringstream json;
    json << "{\n";
    json << "  \"schema_version\": " << kSoakSchemaVersion << ",\n";
    json << "  \"bench\": \"soak\",\n";
    json << "  \"seed\": " << seed << ",\n";
    json << "  \"num_shards\": " << num_shards << ",\n";
    json << "  \"operations\": " << operations << ",\n";
    json << "  \"acked\": " << acked << ",\n";
    json << "  \"retries\": " << retries << ",\n";
    json << "  \"faults_injected\": " << faults_injected << ",\n";
    json << "  \"failovers\": " << failovers << ",\n";
    json << "  \"recoveries\": " << recoveries << ",\n";
    json << "  \"replays_suppressed\": " << replays_suppressed << ",\n";
    json << "  \"elapsed_seconds\": " << elapsed_seconds << ",\n";
    json << "  \"throughput_ops_per_sec\": " << throughput_ops_per_sec
         << ",\n";
    json << "  \"latency_ms\": {\"p50\": " << p50_ms << ", \"p95\": "
         << p95_ms << ", \"p99\": " << p99_ms << "},\n";
    json << "  \"state_digest\": " << state_digest << ",\n";
    json << "  \"mobile_energy_mah\": " << mobile_energy_mah << ",\n";
    json << "  \"all_oracles_green\": "
         << (all_oracles_green() ? "true" : "false") << ",\n";
    json << "  \"epochs\": [\n";
    for (std::size_t i = 0; i < epochs.size(); ++i) {
        const EpochReport& e = epochs[i];
        json << "    {\"epoch\": " << e.epoch
             << ", \"operations\": " << e.operations
             << ", \"retries\": " << e.retries
             << ", \"failovers\": " << e.failovers
             << ", \"recoveries\": " << e.recoveries
             << ", \"p50_ms\": " << e.p50_ms
             << ", \"p95_ms\": " << e.p95_ms
             << ", \"p99_ms\": " << e.p99_ms
             << ", \"oracles\": {\"exactly_once\": "
             << (e.oracles.exactly_once ? "true" : "false")
             << ", \"scatter_gather\": "
             << (e.oracles.scatter_gather ? "true" : "false")
             << ", \"offsets_monotone\": "
             << (e.oracles.offsets_monotone ? "true" : "false")
             << ", \"secrets_redacted\": "
             << (e.oracles.secrets_redacted ? "true" : "false") << "}}"
             << (i + 1 < epochs.size() ? "," : "") << "\n";
    }
    json << "  ]\n";
    json << "}\n";
    return json.str();
}

SoakReport run_soak(const SoakOptions& options) {
    SoakRun run(options);
    return run.run();
}

}  // namespace mie::soak
