// Fleet-scale soak harness: chaos-injected cluster runs with invariant
// oracles.
//
// SoakHarness hosts a sharded, replicated cluster the way production
// would run it — every replica is a cluster::Node behind its own
// GroupCommitter + ReactorServer on 127.0.0.1, client traffic and the
// replication pumps ride real net::TcpTransport — and replays a
// sim::FleetScript against it through a ClusterClient. Chaos is layered
// on deterministically from the one seed:
//
//   - every client link runs through net::FaultyTransport with a seeded
//     random FaultPlan (drops, resets, truncation, corruption);
//   - one follower suffers a store-VFS power loss mid-run and restarts
//     from its surviving files (crash recovery + replication re-pull);
//   - one primary is killed for good mid-run; the next client mutation
//     fails over (kPromote + replay) and a replacement follower is
//     bootstrapped from the promoted node (re-replication).
//
// After every epoch the harness quiesces and checks four oracles:
//
//   1. exactly-once: each living replica's exported snapshot equals a
//      shadow model built by replaying only the *acked* mutations, in
//      ack order, through a fresh DedupHandler(MieServer) per shard;
//   2. scatter/gather: ClusterClient::search_union over the sharded
//      cluster is bitwise-equal to the same queries against one shadow
//      node holding the union of repositories;
//   3. replication offsets are monotone within each replica generation
//      and never exceed the source's last LSN;
//   4. secret hygiene: client-side secrets (user master secrets, data
//      keys) appear in no server directory file and no exported
//      snapshot, and SecretBytes still redacts on ostream.
//
// Determinism contract: the workload, fault schedule, and chaos points
// derive from SoakOptions::seed alone, so two runs with the same options
// produce identical oracle outcomes, identical acked-operation counts,
// and identical final state digests (latencies vary — wall clock is
// reported, never asserted).
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "sim/fleet.hpp"

namespace mie::soak {

struct SoakOptions {
    /// Node state directories are created under here (required).
    std::filesystem::path root_dir;
    /// Master seed: workload, fault plans, and chaos points.
    std::uint64_t seed = 2026;
    std::uint32_t num_shards = 2;
    /// Chaos epochs; every epoch replays `fleet.num_events` events and
    /// ends with a full oracle check.
    std::size_t epochs = 2;
    /// Fleet shape (fleet.seed is overridden from `seed`).
    sim::FleetParams fleet;
    /// Per-I/O-op random fault probability on every client link.
    double fault_rate = 0.015;
    /// Kill one primary mid-run (failover + replacement follower).
    bool kill_primary = true;
    /// Power-loss one follower mid-run (crash restart + re-pull).
    bool power_loss_follower = true;
    /// Records per replication pull (small, so crash-overlap re-pulls
    /// stay inside the per-client replay windows).
    std::size_t pull_batch = 32;
    /// Ranked-search depth for workload searches and oracle probes.
    std::size_t top_k = 4;
    /// Scatter/gather oracle probes per epoch.
    std::size_t search_probes = 3;
    /// Image edge length for generated objects (smaller = faster).
    std::size_t image_size = 32;
};

struct OracleOutcomes {
    bool exactly_once = false;
    bool scatter_gather = false;
    bool offsets_monotone = false;
    bool secrets_redacted = false;

    bool all_green() const {
        return exactly_once && scatter_gather && offsets_monotone &&
               secrets_redacted;
    }
};

struct EpochReport {
    std::size_t epoch = 0;
    std::size_t operations = 0;   ///< workload ops issued this epoch
    std::size_t acked = 0;        ///< ops acknowledged (== operations)
    std::uint64_t retries = 0;    ///< transport-level retries this epoch
    std::uint64_t failovers = 0;  ///< cluster failovers this epoch
    std::uint64_t recoveries = 0; ///< crash restarts + re-bootstraps
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    OracleOutcomes oracles;
};

struct SoakReport {
    std::uint64_t seed = 0;
    std::uint32_t num_shards = 0;
    std::size_t operations = 0;
    std::size_t acked = 0;
    std::uint64_t retries = 0;
    std::uint64_t faults_injected = 0;
    std::uint64_t failovers = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t replays_suppressed = 0;
    double elapsed_seconds = 0.0;
    double throughput_ops_per_sec = 0.0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    /// CRC-32C over the final per-shard primary snapshots — the
    /// reproducibility fingerprint two same-seed runs must share.
    std::uint32_t state_digest = 0;
    /// Modeled client-fleet battery drain (mobile sessions).
    double mobile_energy_mah = 0.0;
    std::vector<EpochReport> epochs;

    bool all_oracles_green() const;

    /// Schema-versioned machine-readable counters (BENCH_soak.json).
    std::string to_json() const;
};

/// Runs one seeded soak: builds the cluster under options.root_dir,
/// replays the fleet script with chaos, and tears everything down.
SoakReport run_soak(const SoakOptions& options);

}  // namespace mie::soak
