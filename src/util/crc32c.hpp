// CRC-32C (Castagnoli, reflected polynomial 0x82F63B78).
//
// The write-ahead log checksums every record payload on the hot path, so
// it uses this variant: x86-64 CPUs since Nehalem evaluate it in hardware
// (SSE4.2 `crc32` instruction, ~10 bytes/cycle), with a slice-by-8 table
// fallback everywhere else. The implementation choice goes through the
// src/kernels dispatch ladder (cpuid + MIE_KERNEL_LEVEL override). Same
// corruption-detection strength and threat model as util/crc32.hpp
// (disk/crash corruption, not an adversary); the two differ only in
// polynomial and speed.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace mie {

/// One-shot CRC-32C of `data`. Check value: crc32c("123456789") ==
/// 0xE3069283.
std::uint32_t crc32c(BytesView data);

/// Incremental form: feed `crc32c_update` the running value (start from
/// `crc32c_init()`), finish with `crc32c_final`.
std::uint32_t crc32c_init();
std::uint32_t crc32c_update(std::uint32_t state, BytesView data);
std::uint32_t crc32c_final(std::uint32_t state);

/// Portable slice-by-8 implementation of `crc32c_update`; exposed so
/// tests can pin the hardware path against it.
std::uint32_t crc32c_update_software(std::uint32_t state, BytesView data);

}  // namespace mie
