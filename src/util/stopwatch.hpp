// Wall-clock stopwatch used to measure the real CPU work of sub-operations
// before device scaling (see sim/clock.hpp for the simulated timeline).
#pragma once

#include <chrono>

namespace mie {

class Stopwatch {
public:
    Stopwatch() : start_(Clock::now()) {}

    /// Resets the stopwatch to now.
    void reset() { start_ = Clock::now(); }

    /// Seconds elapsed since construction or the last reset().
    double elapsed_seconds() const {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

}  // namespace mie
