// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// Used by the storage layer to detect torn or corrupted write-ahead-log
// records and checkpoint files. Not a cryptographic integrity check — the
// threat model is disk/crash corruption, not an adversary (snapshot and
// log contents are ciphertexts and encodings already).
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace mie {

/// One-shot CRC-32 of `data`.
std::uint32_t crc32(BytesView data);

/// Incremental form: feed `crc32_update` the running value (start from
/// `crc32_init()`), finish with `crc32_final`.
std::uint32_t crc32_init();
std::uint32_t crc32_update(std::uint32_t state, BytesView data);
std::uint32_t crc32_final(std::uint32_t state);

}  // namespace mie
