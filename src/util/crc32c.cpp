#include "util/crc32c.hpp"

#include "kernels/kernels.hpp"

namespace mie {

// Both implementations (slice-by-8 and the SSE4.2 `crc32` instruction)
// live in src/kernels; this wrapper keeps the historical util/ API and
// routes through the dispatch ladder so MIE_KERNEL_LEVEL governs the WAL
// and wire-framing checksums like every other kernel.

std::uint32_t crc32c_update_software(std::uint32_t state, BytesView data) {
    return kernels::table_for(kernels::Level::kScalar)
        .crc32c_update(state, data.data(), data.size());
}

std::uint32_t crc32c_init() { return 0xFFFFFFFFu; }

std::uint32_t crc32c_update(std::uint32_t state, BytesView data) {
    return kernels::table().crc32c_update(state, data.data(), data.size());
}

std::uint32_t crc32c_final(std::uint32_t state) {
    return state ^ 0xFFFFFFFFu;
}

std::uint32_t crc32c(BytesView data) {
    return crc32c_final(crc32c_update(crc32c_init(), data));
}

}  // namespace mie
