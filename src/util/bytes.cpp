#include "util/bytes.hpp"

namespace mie {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
}
}  // namespace

std::string hex_encode(BytesView data) {
    std::string out;
    out.reserve(data.size() * 2);
    for (std::uint8_t b : data) {
        out.push_back(kHexDigits[b >> 4]);
        out.push_back(kHexDigits[b & 0x0f]);
    }
    return out;
}

Bytes hex_decode(std::string_view hex) {
    if (hex.size() % 2 != 0) {
        throw std::invalid_argument("hex_decode: odd length");
    }
    Bytes out;
    out.reserve(hex.size() / 2);
    for (std::size_t i = 0; i < hex.size(); i += 2) {
        const int hi = hex_value(hex[i]);
        const int lo = hex_value(hex[i + 1]);
        if (hi < 0 || lo < 0) {
            throw std::invalid_argument("hex_decode: invalid digit");
        }
        out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
    }
    return out;
}

bool ct_equal(BytesView a, BytesView b) {
    // Branch-free even on length mismatch: compare the common prefix and
    // fold the length difference into the accumulator, so the running time
    // depends only on min(size) and not on where (or whether) inputs
    // differ.
    const std::size_t common = a.size() < b.size() ? a.size() : b.size();
    std::uint8_t acc = 0;
    for (std::size_t i = 0; i < common; ++i) acc |= a[i] ^ b[i];
    std::size_t len_diff = a.size() ^ b.size();
    for (std::size_t s = 0; s < sizeof(std::size_t); ++s) {
        acc |= static_cast<std::uint8_t>(len_diff >> (8 * s));
    }
    return acc == 0;
}

void xor_into(std::span<std::uint8_t> dst, BytesView src) {
    if (dst.size() != src.size()) {
        throw std::invalid_argument("xor_into: size mismatch");
    }
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] ^= src[i];
}

}  // namespace mie
