// Byte-buffer helpers shared across the library.
//
// All cryptographic material and serialized messages are carried as
// `mie::Bytes` (a std::vector<std::uint8_t>). Helpers here convert between
// bytes, hex, and integral values with explicit endianness; nothing in this
// header allocates global state.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace mie {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Converts an ASCII string to a byte buffer (no terminator).
inline Bytes to_bytes(std::string_view s) {
    return Bytes(s.begin(), s.end());
}

/// Converts a byte buffer to a std::string (bytes copied verbatim).
inline std::string to_string(BytesView b) {
    return std::string(b.begin(), b.end());
}

/// Hex-encodes a byte buffer using lowercase digits.
std::string hex_encode(BytesView data);

/// Decodes a hex string; throws std::invalid_argument on malformed input.
Bytes hex_decode(std::string_view hex);

/// Appends `value` to `out` in little-endian order.
template <typename T>
    requires std::is_integral_v<T>
void append_le(Bytes& out, T value) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
        out.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
    }
}

/// Reads a little-endian integral value from `data` at `offset`.
/// Throws std::out_of_range if the buffer is too short.
template <typename T>
    requires std::is_integral_v<T>
T read_le(BytesView data, std::size_t offset) {
    if (offset + sizeof(T) > data.size()) {
        throw std::out_of_range("read_le: buffer too short");
    }
    T value = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
        value |= static_cast<T>(static_cast<T>(data[offset + i]) << (8 * i));
    }
    return value;
}

/// Writes `value` big-endian into `out[offset..offset+sizeof(T))`.
template <typename T>
    requires std::is_integral_v<T>
void store_be(std::uint8_t* out, T value) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
        out[i] = static_cast<std::uint8_t>(value >> (8 * (sizeof(T) - 1 - i)));
    }
}

/// Reads a big-endian value of type T from `in`.
template <typename T>
    requires std::is_integral_v<T>
T load_be(const std::uint8_t* in) {
    T value = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
        value = static_cast<T>((value << 8) | in[i]);
    }
    return value;
}

/// Constant-time equality over byte buffers (length leak is acceptable).
bool ct_equal(BytesView a, BytesView b);

/// XORs `src` into `dst` element-wise; buffers must have equal size.
void xor_into(std::span<std::uint8_t> dst, BytesView src);

}  // namespace mie
