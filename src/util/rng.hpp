// Fast non-cryptographic randomness for simulation workloads.
//
// Cryptographic randomness lives in crypto/drbg.hpp; this generator is for
// dataset synthesis, workload shuffling, and other places where speed and
// reproducibility matter but security does not.
#pragma once

#include <cstdint>
#include <limits>

namespace mie {

/// SplitMix64 generator. Deterministic given a seed, satisfies
/// std::uniform_random_bit_generator so it can drive <random> distributions.
class SplitMix64 {
public:
    using result_type = std::uint64_t;

    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() {
        return std::numeric_limits<result_type>::max();
    }

    result_type operator()() {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /// Uniform double in [0, 1).
    double next_double() {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /// Uniform integer in [0, bound). bound must be > 0.
    std::uint64_t next_below(std::uint64_t bound) { return (*this)() % bound; }

private:
    std::uint64_t state_;
};

}  // namespace mie
