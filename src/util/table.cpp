#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace mie {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
    if (headers_.empty()) {
        throw std::invalid_argument("TextTable: need at least one column");
    }
}

void TextTable::add_row(std::vector<std::string> cells) {
    if (cells.size() != headers_.size()) {
        throw std::invalid_argument("TextTable: row width mismatch");
    }
    rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
        for (const auto& row : rows_) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << "| " << row[c]
               << std::string(widths[c] - row[c].size() + 1, ' ');
        }
        os << "|\n";
    };
    print_row(headers_);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        os << "|" << std::string(widths[c] + 2, '-');
    }
    os << "|\n";
    for (const auto& row : rows_) print_row(row);
}

std::string fmt_double(double v, int digits) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

}  // namespace mie
