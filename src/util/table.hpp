// Plain-text aligned table printer used by the benchmark harness to emit the
// paper's tables/figures as rows on stdout.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mie {

class TextTable {
public:
    /// Creates a table with the given column headers.
    explicit TextTable(std::vector<std::string> headers);

    /// Appends one row; must have exactly as many cells as there are headers.
    void add_row(std::vector<std::string> cells);

    /// Renders the table with column alignment and a header rule.
    void print(std::ostream& os) const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimal places.
std::string fmt_double(double v, int digits = 3);

}  // namespace mie
