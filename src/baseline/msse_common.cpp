#include "baseline/msse_common.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "crypto/prf.hpp"
#include "fusion/rank_fusion.hpp"

namespace mie::baseline {

Bytes encode_counter_dict(const CounterDict& dict) {
    net::MessageWriter writer;
    writer.write_u32(static_cast<std::uint32_t>(dict.size()));
    for (const auto& [term, counter] : dict) {
        writer.write_string(term);
        writer.write_u64(counter);
    }
    return writer.take();
}

CounterDict decode_counter_dict(BytesView data) {
    net::MessageReader reader(data);
    CounterDict dict;
    const auto count = reader.read_u32();
    for (std::uint32_t i = 0; i < count; ++i) {
        const std::string term = reader.read_string();
        dict[term] = reader.read_u64();
    }
    return dict;
}

Bytes encode_features(const ExtractedFeatures& features) {
    net::MessageWriter writer;
    writer.write_u32(static_cast<std::uint32_t>(features.descriptors.size()));
    for (const auto& descriptor : features.descriptors) {
        writer.write_u32(static_cast<std::uint32_t>(descriptor.size()));
        for (float x : descriptor) writer.write_f32(x);
    }
    writer.write_u32(static_cast<std::uint32_t>(features.terms.size()));
    for (const auto& [term, freq] : features.terms) {
        writer.write_string(term);
        writer.write_u32(freq);
    }
    return writer.take();
}

ExtractedFeatures decode_features(BytesView data) {
    net::MessageReader reader(data);
    ExtractedFeatures features;
    const auto num_descriptors = reader.read_u32();
    features.descriptors.reserve(num_descriptors);
    for (std::uint32_t i = 0; i < num_descriptors; ++i) {
        const auto dims = reader.read_u32();
        features::FeatureVec descriptor(dims);
        for (auto& x : descriptor) x = reader.read_f32();
        features.descriptors.push_back(std::move(descriptor));
    }
    const auto num_terms = reader.read_u32();
    for (std::uint32_t i = 0; i < num_terms; ++i) {
        const std::string term = reader.read_string();
        features.terms[term] = reader.read_u32();
    }
    return features;
}

Bytes derive_k1(BytesView rk2, const std::string& term) {
    return crypto::prf_sha1(rk2, to_bytes(term + "\x01"));
}

Bytes derive_k2(BytesView rk2, const std::string& term) {
    // Truncated to 16 bytes: k2 keys an AES-128-CTR value encryption.
    Bytes k2 = crypto::prf_sha1(rk2, to_bytes(term + "\x02"));
    k2.resize(16);
    return k2;
}

Bytes index_label(BytesView k1, std::uint64_t counter) {
    return crypto::prf_counter(k1, counter);
}

std::string term_id(BytesView rk2, const std::string& term) {
    const Bytes id = crypto::prf_sha1(rk2, to_bytes(term + "\x03"));
    return hex_encode(id);
}

std::string modality_term(Modality modality, const std::string& raw_term) {
    return (modality == Modality::kImage ? "i/" : "t/") + raw_term;
}

std::vector<std::pair<std::uint64_t, double>> linear_ranked_search(
    const ExtractedFeatures& query,
    const std::vector<PlainScoredObject>& objects, std::size_t top_k) {
    std::map<index::DocId, double> image_scores, text_scores;
    for (const auto& object : objects) {
        if (!query.descriptors.empty() &&
            !object.features.descriptors.empty()) {
            double total = 0.0;
            for (const auto& q : query.descriptors) {
                double best = std::numeric_limits<double>::infinity();
                for (const auto& d : object.features.descriptors) {
                    best = std::min(best, features::squared_distance(q, d));
                }
                total += 1.0 / (1.0 + std::sqrt(best));
            }
            image_scores[object.id] =
                total / static_cast<double>(query.descriptors.size());
        }
        double overlap = 0.0;
        for (const auto& [term, freq] : object.features.terms) {
            const auto it = query.terms.find(term);
            if (it != query.terms.end()) {
                overlap += std::min(freq, it->second);
            }
        }
        if (overlap > 0.0) text_scores[object.id] = overlap;
    }
    const std::size_t pool = std::max<std::size_t>(top_k * 4, 32);
    const std::array<fusion::RankedList, 2> lists = {
        index::top_k_of(std::move(image_scores), pool),
        index::top_k_of(std::move(text_scores), pool)};
    const auto fused = fusion::log_isr_fusion(lists, top_k);
    std::vector<std::pair<std::uint64_t, double>> results;
    results.reserve(fused.size());
    for (const auto& item : fused) {
        results.emplace_back(item.doc, item.score);
    }
    return results;
}

}  // namespace mie::baseline
