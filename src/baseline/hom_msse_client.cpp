#include "baseline/hom_msse_client.hpp"

#include <algorithm>
#include <cmath>

#include "crypto/ctr.hpp"
#include "crypto/kdf.hpp"
#include "fusion/rank_fusion.hpp"
#include "mie/object_codec.hpp"
#include "net/envelope.hpp"

namespace mie::baseline {

using crypto::BigUint;

namespace {
constexpr std::size_t kImage = static_cast<std::size_t>(Modality::kImage);
}  // namespace

HomMsseClient::HomMsseClient(net::Transport& transport,
                             std::string repo_id, BytesView repo_entropy,
                             Bytes user_secret, const HomMsseParams& p,
                             double device_cpu_scale)
    : transport_(transport),
      repo_id_(std::move(repo_id)),
      rk1_(crypto::derive_key(repo_entropy, "hom-msse-rk1")),
      rk2_(crypto::derive_key(repo_entropy, "hom-msse-rk2")),
      keyring_(user_secret),
      meter_(device_cpu_scale),
      drbg_(crypto::derive_key(repo_entropy, "hom-msse-paillier-seed")),
      paillier_(crypto::Paillier::generate(drbg_, p.paillier_bits)),
      params(p) {
    crypto::CtrDrbg id_gen(
        crypto::derive_key(user_secret, "transport/op-client-id"));
    op_client_id_ = net::make_client_id(id_gen.next_u64());
}

Bytes HomMsseClient::call(BytesView request, bool synchronous) {
    Bytes enveloped;
    if (!request.empty() && is_mutating(static_cast<HomOp>(request[0]))) {
        enveloped = net::envelope_wrap(op_client_id_, ++op_seq_, request);
        request = enveloped;
    }
    const double wire_before = transport_.network_seconds();
    const double server_before = transport_.server_seconds();
    Bytes response = transport_.call(request);
    meter_.add_modeled_seconds(sim::SubOp::kNetwork,
                               transport_.network_seconds() - wire_before);
    if (synchronous) {
        meter_.add_modeled_seconds(
            sim::SubOp::kNetwork,
            transport_.server_seconds() - server_before);
    }
    return response;
}

Bytes HomMsseClient::encrypt_with_rk1(BytesView plaintext) {
    const crypto::AesCtr cipher(rk1_);
    Bytes nonce(crypto::AesCtr::kNonceSize, 0);
    store_be<std::uint64_t>(nonce.data() + 8, ++nonce_counter_);
    const Bytes user_salt = keyring_.data_key(0);
    for (std::size_t i = 0; i < 8; ++i) nonce[i] = user_salt[i];
    return cipher.seal(nonce, plaintext);
}

Bytes HomMsseClient::decrypt_with_rk1(BytesView sealed) const {
    return crypto::AesCtr(rk1_).open(sealed);
}

Bytes HomMsseClient::encrypt_object_blob(
    const sim::MultimodalObject& object) {
    const Bytes dk = keyring_.data_key(object.id);
    const crypto::AesCtr cipher(dk);
    crypto::CtrDrbg nonce_gen(
        crypto::derive_key(dk, "nonce/" + std::to_string(object.id)));
    return cipher.seal(nonce_gen.generate(crypto::AesCtr::kNonceSize),
                       mie::encode_object(object));
}

void HomMsseClient::create_repository() {
    net::MessageWriter writer;
    writer.write_u8(static_cast<std::uint8_t>(HomOp::kCreate));
    writer.write_string(repo_id_);
    writer.write_bytes(paillier_.public_key().n.to_bytes_be());
    call(writer.take(), /*synchronous=*/false);
}

std::array<features::TermHistogram, kNumModalities>
HomMsseClient::modality_histograms(const ExtractedFeatures& features) const {
    std::array<features::TermHistogram, kNumModalities> hists;
    if (trained_) {
        for (const auto& descriptor : features.descriptors) {
            ++hists[kImage][std::to_string(
                trained_->codebook.quantize(descriptor))];
        }
    }
    hists[static_cast<std::size_t>(Modality::kText)] = features.terms;
    return hists;
}

std::array<std::vector<IndexEntry>, kNumModalities>
HomMsseClient::build_entries(
    std::uint64_t doc,
    const std::array<features::TermHistogram, kNumModalities>& hists,
    std::array<CounterDict, kNumModalities>& counters) {
    std::array<std::vector<IndexEntry>, kNumModalities> entries;
    for (std::size_t m = 0; m < kNumModalities; ++m) {
        for (const auto& [raw_term, freq] : hists[m]) {
            const std::string term =
                modality_term(static_cast<Modality>(m), raw_term);
            Bytes k1, label;
            meter_.timed(sim::SubOp::kIndex, [&] {
                k1 = derive_k1(rk2_, term);
                label = index_label(k1, counters[m][term]++);
            });
            // Homomorphic encryption of the frequency — the dominant
            // client cost of Hom-MSSE.
            Bytes value = meter_.timed(sim::SubOp::kEncrypt, [&] {
                return paillier_.encrypt(BigUint(freq), drbg_).to_bytes_be();
            });
            entries[m].push_back(IndexEntry{label, doc, std::move(value)});
        }
    }
    return entries;
}

void HomMsseClient::write_entries(
    net::MessageWriter& writer,
    const std::array<std::vector<IndexEntry>, kNumModalities>& entries)
    const {
    for (std::size_t m = 0; m < kNumModalities; ++m) {
        writer.write_u32(static_cast<std::uint32_t>(entries[m].size()));
        for (const auto& entry : entries[m]) {
            writer.write_bytes(entry.label);
            writer.write_u64(entry.doc);
            writer.write_bytes(entry.encrypted_freq);
        }
    }
}

std::array<CounterDict, kNumModalities> HomMsseClient::get_and_inc_counters(
    const std::array<std::vector<std::string>, kNumModalities>& terms,
    std::uint64_t increment) {
    // Build the request: real terms with Enc(increment), plus padding terms
    // with Enc(0) so the server cannot tell how many terms the object
    // really has (the 1.6x padding of the appendix).
    net::MessageWriter writer;
    writer.write_u8(static_cast<std::uint8_t>(HomOp::kGetAndIncCtrs));
    writer.write_string(repo_id_);
    std::array<std::unordered_map<std::string, std::string>, kNumModalities>
        id_to_term;
    for (std::size_t m = 0; m < kNumModalities; ++m) {
        const std::size_t padded = static_cast<std::size_t>(
            std::ceil(static_cast<double>(terms[m].size()) *
                      std::max(1.0, params.counter_padding)));
        writer.write_u32(static_cast<std::uint32_t>(padded));
        for (std::size_t i = 0; i < padded; ++i) {
            std::string id;
            BigUint enc;
            if (i < terms[m].size()) {
                id = meter_.timed(sim::SubOp::kIndex, [&] {
                    return term_id(rk2_, terms[m][i]);
                });
                id_to_term[m][id] = terms[m][i];
                enc = meter_.timed(sim::SubOp::kEncrypt, [&] {
                    return paillier_.encrypt(BigUint(increment), drbg_);
                });
            } else {
                // Padding: a random fake term id incremented by Enc(0).
                id = "pad" + hex_encode(drbg_.generate(8));
                enc = meter_.timed(sim::SubOp::kEncrypt, [&] {
                    return paillier_.encrypt(BigUint(0), drbg_);
                });
            }
            writer.write_string(id);
            writer.write_bytes(enc.to_bytes_be());
        }
    }

    const Bytes response = call(writer.take(), /*synchronous=*/true);
    net::MessageReader reader(response);
    std::array<CounterDict, kNumModalities> counters;
    for (std::size_t m = 0; m < kNumModalities; ++m) {
        const auto count = reader.read_u32();
        for (std::uint32_t i = 0; i < count; ++i) {
            const std::string id = reader.read_string();
            const BigUint enc = BigUint::from_bytes_be(reader.read_bytes());
            const auto it = id_to_term[m].find(id);
            if (it == id_to_term[m].end()) continue;  // padding echo
            const BigUint plain = meter_.timed(sim::SubOp::kEncrypt, [&] {
                return paillier_.decrypt(enc);
            });
            counters[m][it->second] = plain.low_u64();
        }
    }
    return counters;
}

void HomMsseClient::update(const sim::MultimodalObject& object) {
    const ExtractedFeatures features = meter_.timed(sim::SubOp::kIndex, [&] {
        return extract_features(object, extraction);
    });
    local_features_[object.id] = features;

    Bytes blob;
    meter_.timed(sim::SubOp::kEncrypt,
                 [&] { blob = encrypt_object_blob(object); });

    if (!trained_) {
        // Untrained adds optionally ship the encrypted feature blob so the
        // cloud holds training material for users without a local cache.
        Bytes efvs;
        if (store_features_in_cloud) {
            efvs = meter_.timed(sim::SubOp::kEncrypt, [&] {
                return encrypt_with_rk1(encode_features(features));
            });
        }
        net::MessageWriter writer;
        writer.write_u8(static_cast<std::uint8_t>(HomOp::kStoreObject));
        writer.write_string(repo_id_);
        writer.write_u64(object.id);
        writer.write_bytes(blob);
        writer.write_bytes(efvs);
        call(writer.take(), /*synchronous=*/false);
        return;
    }

    const auto hists = modality_histograms(features);
    std::array<std::vector<std::string>, kNumModalities> term_lists;
    for (std::size_t m = 0; m < kNumModalities; ++m) {
        for (const auto& [raw_term, freq] : hists[m]) {
            term_lists[m].push_back(
                modality_term(static_cast<Modality>(m), raw_term));
        }
    }
    // The server hands back current counters and increments them by one —
    // no write lock, unlike MSSE.
    auto counters = get_and_inc_counters(term_lists, /*increment=*/1);
    const auto entries = build_entries(object.id, hists, counters);

    net::MessageWriter writer;
    writer.write_u8(static_cast<std::uint8_t>(HomOp::kTrainedUpdate));
    writer.write_string(repo_id_);
    writer.write_u64(object.id);
    writer.write_bytes(blob);
    write_entries(writer, entries);
    call(writer.take(), /*synchronous=*/false);
}

void HomMsseClient::train() {
    std::vector<std::pair<std::uint64_t, ExtractedFeatures>> corpus;
    {
        net::MessageWriter writer;
        writer.write_u8(static_cast<std::uint8_t>(HomOp::kGetFeatures));
        writer.write_string(repo_id_);
        const Bytes response = call(writer.take(), /*synchronous=*/true);
        net::MessageReader reader(response);
        const auto count = reader.read_u32();
        for (std::uint32_t i = 0; i < count; ++i) {
            const std::uint64_t id = reader.read_u64();
            const Bytes sealed = reader.read_bytes();
            if (const auto it = local_features_.find(id);
                it != local_features_.end()) {
                corpus.emplace_back(id, it->second);
            } else if (!sealed.empty()) {
                const Bytes plain = meter_.timed(sim::SubOp::kEncrypt, [&] {
                    return decrypt_with_rk1(sealed);
                });
                corpus.emplace_back(id, decode_features(plain));
            }
            // Objects with neither a cloud feature blob nor a local cache
            // entry cannot be (re)indexed by this client and are skipped.
        }
    }

    meter_.timed(sim::SubOp::kTrain, [&] {
        std::vector<features::FeatureVec> training;
        std::size_t total = 0;
        for (const auto& [id, features] : corpus) {
            total += features.descriptors.size();
        }
        const std::size_t stride = std::max<std::size_t>(
            1,
            total / std::max<std::size_t>(1, params.max_training_samples));
        std::size_t cursor = 0;
        for (const auto& [id, features] : corpus) {
            for (const auto& descriptor : features.descriptors) {
                if (cursor++ % stride == 0) training.push_back(descriptor);
            }
        }
        index::VocabTree<index::EuclideanSpace>::Params tree_params;
        tree_params.branch = params.tree_branch;
        tree_params.depth = params.tree_depth;
        tree_params.kmeans_iterations = params.kmeans_iterations;
        if (!training.empty()) {
            trained_ = TrainedState{index::VocabTree<index::EuclideanSpace>::
                                        build(training, tree_params,
                                              params.seed)};
        } else {
            trained_ = TrainedState{};
        }
    });

    std::array<CounterDict, kNumModalities> counters;
    net::MessageWriter writer;
    writer.write_u8(static_cast<std::uint8_t>(HomOp::kStoreIndex));
    writer.write_string(repo_id_);
    std::array<std::vector<IndexEntry>, kNumModalities> all_entries;
    for (const auto& [id, features] : corpus) {
        const auto hists = meter_.timed(sim::SubOp::kIndex, [&] {
            return modality_histograms(features);
        });
        auto entries = build_entries(id, hists, counters);
        for (std::size_t m = 0; m < kNumModalities; ++m) {
            all_entries[m].insert(all_entries[m].end(),
                                  std::make_move_iterator(entries[m].begin()),
                                  std::make_move_iterator(entries[m].end()));
        }
    }
    write_entries(writer, all_entries);
    // Upload counters as Paillier ciphertexts keyed by deterministic ids.
    for (std::size_t m = 0; m < kNumModalities; ++m) {
        writer.write_u32(static_cast<std::uint32_t>(counters[m].size()));
        // mielint: allow(R3): CounterDict is an ordered std::map
        for (const auto& [term, counter] : counters[m]) {
            const std::string id = term_id(rk2_, term);
            const BigUint enc = meter_.timed(sim::SubOp::kEncrypt, [&] {
                return paillier_.encrypt(BigUint(counter), drbg_);
            });
            writer.write_string(id);
            writer.write_bytes(enc.to_bytes_be());
        }
    }
    call(writer.take(), /*synchronous=*/false);
}

void HomMsseClient::remove(std::uint64_t object_id) {
    local_features_.erase(object_id);
    net::MessageWriter writer;
    writer.write_u8(static_cast<std::uint8_t>(HomOp::kRemove));
    writer.write_string(repo_id_);
    writer.write_u64(object_id);
    call(writer.take(), /*synchronous=*/false);
}

std::vector<SearchResult> HomMsseClient::search(
    const sim::MultimodalObject& query, std::size_t top_k) {
    const ExtractedFeatures features = meter_.timed(sim::SubOp::kIndex, [&] {
        return extract_features(query, extraction);
    });

    if (!trained_) {
        net::MessageWriter writer;
        writer.write_u8(static_cast<std::uint8_t>(HomOp::kGetAllObjects));
        writer.write_string(repo_id_);
        const Bytes response = call(writer.take(), /*synchronous=*/true);
        net::MessageReader reader(response);
        const auto count = reader.read_u32();
        std::vector<PlainScoredObject> objects;
        objects.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
            PlainScoredObject object;
            object.id = reader.read_u64();
            object.blob = reader.read_bytes();
            const Bytes sealed = reader.read_bytes();
            object.features =
                decode_features(meter_.timed(sim::SubOp::kEncrypt, [&] {
                    return decrypt_with_rk1(sealed);
                }));
            objects.push_back(std::move(object));
        }
        const auto fused = meter_.timed(sim::SubOp::kIndex, [&] {
            return linear_ranked_search(features, objects, top_k);
        });
        std::vector<SearchResult> results;
        for (const auto& [doc, score] : fused) {
            const auto it = std::find_if(
                objects.begin(), objects.end(),
                [doc](const PlainScoredObject& o) { return o.id == doc; });
            results.push_back(SearchResult{doc, score, it->blob});
        }
        return results;
    }

    const auto hists = meter_.timed(sim::SubOp::kIndex, [&] {
        return modality_histograms(features);
    });
    // Fetch counter values for the query terms (zero increments: searching
    // must not disturb the counters).
    std::array<std::vector<std::string>, kNumModalities> term_lists;
    for (std::size_t m = 0; m < kNumModalities; ++m) {
        for (const auto& [raw_term, freq] : hists[m]) {
            term_lists[m].push_back(
                modality_term(static_cast<Modality>(m), raw_term));
        }
    }
    auto counters = get_and_inc_counters(term_lists, /*increment=*/0);

    net::MessageWriter writer;
    writer.write_u8(static_cast<std::uint8_t>(HomOp::kSearch));
    writer.write_string(repo_id_);
    for (std::size_t m = 0; m < kNumModalities; ++m) {
        std::vector<QueryTerm> query_terms;
        meter_.timed(sim::SubOp::kIndex, [&] {
            for (const auto& [raw_term, freq] : hists[m]) {
                const std::string term =
                    modality_term(static_cast<Modality>(m), raw_term);
                const auto counter_it = counters[m].find(term);
                if (counter_it == counters[m].end() ||
                    counter_it->second == 0) {
                    continue;
                }
                QueryTerm qt;
                const Bytes k1 = derive_k1(rk2_, term);
                qt.query_freq = freq;
                qt.labels.reserve(counter_it->second);
                for (std::uint64_t c = 0; c < counter_it->second; ++c) {
                    qt.labels.push_back(index_label(k1, c));
                }
                query_terms.push_back(std::move(qt));
            }
        });
        writer.write_u32(static_cast<std::uint32_t>(query_terms.size()));
        for (const auto& qt : query_terms) {
            writer.write_u32(static_cast<std::uint32_t>(qt.labels.size()));
            for (const auto& label : qt.labels) writer.write_bytes(label);
            writer.write_u32(qt.query_freq);
        }
    }

    const Bytes response = call(writer.take(), /*synchronous=*/true);
    net::MessageReader reader(response);

    // All blobs come back; scores are encrypted per modality.
    const auto num_objects = reader.read_u32();
    std::unordered_map<std::uint64_t, Bytes> blobs;
    for (std::uint32_t i = 0; i < num_objects; ++i) {
        const std::uint64_t id = reader.read_u64();
        blobs[id] = reader.read_bytes();
    }
    std::array<fusion::RankedList, kNumModalities> ranked;
    for (std::size_t m = 0; m < kNumModalities; ++m) {
        const auto count = reader.read_u32();
        std::map<index::DocId, double> scores;
        for (std::uint32_t i = 0; i < count; ++i) {
            const std::uint64_t doc = reader.read_u64();
            const BigUint enc = BigUint::from_bytes_be(reader.read_bytes());
            // Client-side homomorphic decryption of every score.
            const BigUint plain = meter_.timed(sim::SubOp::kEncrypt, [&] {
                return paillier_.decrypt(enc);
            });
            scores[doc] = static_cast<double>(plain.low_u64()) / 1000.0;
        }
        const std::size_t pool = std::max<std::size_t>(top_k * 4, 32);
        ranked[m] = meter_.timed(sim::SubOp::kIndex, [&] {
            return index::top_k_of(std::move(scores), pool);
        });
    }
    const auto fused = meter_.timed(sim::SubOp::kIndex, [&] {
        return fusion::log_isr_fusion(ranked, top_k);
    });

    std::vector<SearchResult> results;
    results.reserve(fused.size());
    for (const auto& item : fused) {
        results.push_back(
            SearchResult{item.doc, item.score, blobs.at(item.doc)});
    }
    return results;
}

sim::MultimodalObject HomMsseClient::decrypt_result(
    const SearchResult& result) const {
    const crypto::AesCtr cipher(keyring_.data_key(result.object_id));
    return mie::decode_object(cipher.open(result.encrypted_object));
}

}  // namespace mie::baseline
