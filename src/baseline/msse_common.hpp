// Shared machinery of the MSSE / Hom-MSSE baselines (paper appendix,
// Figs. 7-8).
//
// Both baselines extend Cash et al. (NDSS'14) to multimodal ranked search:
// index positions are PRF labels l = PRF(k1, ctr) derived per keyword from
// per-keyword counters, index values carry the document id (plaintext, for
// removal support — the paper's appendix variant) plus an encrypted
// frequency. They differ only in how frequencies and counters are
// encrypted: AES (MSSE, frequencies revealed at search time) vs Paillier
// (Hom-MSSE, frequencies hidden; the cloud scores homomorphically).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "crypto/secret.hpp"
#include "features/feature.hpp"
#include "features/text.hpp"
#include "mie/extract.hpp"
#include "net/message.hpp"
#include "util/bytes.hpp"

namespace mie::baseline {

/// Modalities of the prototype (paper §VI: image + text).
enum class Modality : std::uint8_t { kImage = 0, kText = 1 };
constexpr std::size_t kNumModalities = 2;

/// Per-keyword counters of one modality: term -> number of index entries.
using CounterDict = std::map<std::string, std::uint64_t>;

/// Serializes a counter dictionary (plaintext; callers encrypt the result).
Bytes encode_counter_dict(const CounterDict& dict);
CounterDict decode_counter_dict(BytesView data);

/// Serializes extracted features (descriptors + term histogram) for
/// client-side encryption and cloud storage; the client re-downloads and
/// decrypts these to run training locally.
Bytes encode_features(const ExtractedFeatures& features);
ExtractedFeatures decode_features(BytesView data);

/// Key derivation for index labels, following Fig. 7:
///   k1 = PRF(rk2, term || '1')   -- label derivation key
///   k2 = PRF(rk2, term || '2')   -- value encryption key
Bytes derive_k1(BytesView rk2, const std::string& term);
Bytes derive_k2(BytesView rk2, const std::string& term);

/// Index label l = PRF(k1, ctr).
Bytes index_label(BytesView k1, std::uint64_t counter);

/// Deterministic term id used by Hom-MSSE's server-side counter store.
std::string term_id(BytesView rk2, const std::string& term);

/// One client-produced index entry (the {l, d} pairs of Fig. 7).
struct IndexEntry {
    Bytes label;
    std::uint64_t doc = 0;
    Bytes encrypted_freq;
};

/// One query term expanded into its candidate labels (the {ll, k2, freq}
/// triples of Fig. 7). `value_key` is empty for Hom-MSSE (the server never
/// decrypts frequencies there).
struct QueryTerm {
    std::vector<Bytes> labels;
    crypto::SecretBytes value_key;
    std::uint32_t query_freq = 0;
};

/// Counter-dict term key for a visual word / text keyword.
std::string modality_term(Modality modality, const std::string& raw_term);

/// One downloaded object during an untrained (pre-TRAIN) search.
struct PlainScoredObject {
    std::uint64_t id = 0;
    Bytes blob;
    ExtractedFeatures features;
};

/// Client-side linear ranked search over plaintext features (Fig. 7
/// lines 4-10): per-modality scoring + logISR fusion. Shared by the
/// untrained paths of MSSE and Hom-MSSE.
std::vector<std::pair<std::uint64_t, double>> linear_ranked_search(
    const ExtractedFeatures& query,
    const std::vector<PlainScoredObject>& objects, std::size_t top_k);

}  // namespace mie::baseline
