#include "baseline/msse_client.hpp"

#include <algorithm>
#include <cmath>

#include "crypto/ctr.hpp"
#include "crypto/drbg.hpp"
#include "crypto/kdf.hpp"
#include "crypto/prf.hpp"
#include "fusion/rank_fusion.hpp"
#include "mie/object_codec.hpp"
#include "net/envelope.hpp"

namespace mie::baseline {

namespace {
constexpr std::size_t kImage = static_cast<std::size_t>(Modality::kImage);
constexpr std::size_t kText = static_cast<std::size_t>(Modality::kText);
}  // namespace

MsseClient::MsseClient(net::Transport& transport, std::string repo_id,
                       BytesView repo_entropy, Bytes user_secret,
                       double device_cpu_scale)
    : transport_(transport),
      repo_id_(std::move(repo_id)),
      rk1_(crypto::derive_key(repo_entropy, "msse-rk1")),
      rk2_(crypto::derive_key(repo_entropy, "msse-rk2")),
      keyring_(user_secret),
      meter_(device_cpu_scale) {
    crypto::CtrDrbg id_gen(
        crypto::derive_key(user_secret, "transport/op-client-id"));
    op_client_id_ = net::make_client_id(id_gen.next_u64());
}

Bytes MsseClient::call(BytesView request, bool synchronous) {
    Bytes enveloped;
    if (!request.empty() && is_mutating(static_cast<MsseOp>(request[0]))) {
        enveloped = net::envelope_wrap(op_client_id_, ++op_seq_, request);
        request = enveloped;
    }
    const double wire_before = transport_.network_seconds();
    const double server_before = transport_.server_seconds();
    Bytes response = transport_.call(request);
    meter_.add_modeled_seconds(sim::SubOp::kNetwork,
                               transport_.network_seconds() - wire_before);
    if (synchronous) {
        meter_.add_modeled_seconds(
            sim::SubOp::kNetwork,
            transport_.server_seconds() - server_before);
    }
    return response;
}

Bytes MsseClient::encrypt_with_rk1(BytesView plaintext) {
    const crypto::AesCtr cipher(rk1_);
    Bytes nonce(crypto::AesCtr::kNonceSize, 0);
    store_be<std::uint64_t>(nonce.data() + 8, ++nonce_counter_);
    // Nonce uniqueness across clients: fold in the user secret.
    const Bytes user_salt = keyring_.data_key(0);
    for (std::size_t i = 0; i < 8; ++i) nonce[i] = user_salt[i];
    return cipher.seal(nonce, plaintext);
}

Bytes MsseClient::decrypt_with_rk1(BytesView sealed) const {
    return crypto::AesCtr(rk1_).open(sealed);
}

Bytes MsseClient::encrypt_object_blob(const sim::MultimodalObject& object) {
    const Bytes dk = keyring_.data_key(object.id);
    const crypto::AesCtr cipher(dk);
    crypto::CtrDrbg nonce_gen(
        crypto::derive_key(dk, "nonce/" + std::to_string(object.id)));
    return cipher.seal(nonce_gen.generate(crypto::AesCtr::kNonceSize),
                       mie::encode_object(object));
}

void MsseClient::create_repository() {
    net::MessageWriter writer;
    writer.write_u8(static_cast<std::uint8_t>(MsseOp::kCreate));
    writer.write_string(repo_id_);
    call(writer.take(), /*synchronous=*/false);
}

std::array<features::TermHistogram, kNumModalities>
MsseClient::modality_histograms(const ExtractedFeatures& features) const {
    std::array<features::TermHistogram, kNumModalities> hists;
    if (trained_) {
        for (const auto& descriptor : features.descriptors) {
            ++hists[kImage][std::to_string(
                trained_->codebook.quantize(descriptor))];
        }
    }
    hists[kText] = features.terms;
    return hists;
}

std::array<std::vector<IndexEntry>, kNumModalities> MsseClient::build_entries(
    std::uint64_t doc,
    const std::array<features::TermHistogram, kNumModalities>& hists,
    std::array<CounterDict, kNumModalities>& counters) {
    std::array<std::vector<IndexEntry>, kNumModalities> entries;
    for (std::size_t m = 0; m < kNumModalities; ++m) {
        for (const auto& [raw_term, freq] : hists[m]) {
            const std::string term =
                modality_term(static_cast<Modality>(m), raw_term);
            // Label derivation (indexing work).
            Bytes k1, k2, label;
            std::uint64_t counter = 0;
            meter_.timed(sim::SubOp::kIndex, [&] {
                k1 = derive_k1(rk2_, term);
                k2 = derive_k2(rk2_, term);
                counter = counters[m][term]++;
                label = index_label(k1, counter);
            });
            // Value encryption (crypto work).
            Bytes value = meter_.timed(sim::SubOp::kEncrypt, [&] {
                Bytes freq_le;
                append_le<std::uint32_t>(freq_le, freq);
                const crypto::AesCtr cipher(k2);
                Bytes nonce(crypto::AesCtr::kNonceSize, 0);
                store_be<std::uint64_t>(nonce.data() + 8, counter);
                return cipher.seal(nonce, freq_le);
            });
            entries[m].push_back(IndexEntry{label, doc, std::move(value)});
        }
    }
    return entries;
}

void MsseClient::write_entries(
    net::MessageWriter& writer,
    const std::array<std::vector<IndexEntry>, kNumModalities>& entries)
    const {
    for (std::size_t m = 0; m < kNumModalities; ++m) {
        writer.write_u32(static_cast<std::uint32_t>(entries[m].size()));
        for (const auto& entry : entries[m]) {
            writer.write_bytes(entry.label);
            writer.write_u64(entry.doc);
            writer.write_bytes(entry.encrypted_freq);
        }
    }
}

std::array<CounterDict, kNumModalities> MsseClient::fetch_counters(
    bool lock) {
    net::MessageWriter writer;
    writer.write_u8(static_cast<std::uint8_t>(MsseOp::kGetCtrs));
    writer.write_string(repo_id_);
    writer.write_u8(lock ? 1 : 0);
    const Bytes response = call(writer.take(), /*synchronous=*/true);
    net::MessageReader reader(response);
    std::array<CounterDict, kNumModalities> counters;
    for (std::size_t m = 0; m < kNumModalities; ++m) {
        const Bytes sealed = reader.read_bytes();
        if (sealed.empty()) continue;  // fresh repository
        const Bytes plain = meter_.timed(
            sim::SubOp::kEncrypt, [&] { return decrypt_with_rk1(sealed); });
        counters[m] = decode_counter_dict(plain);
    }
    return counters;
}

void MsseClient::update(const sim::MultimodalObject& object) {
    const ExtractedFeatures features = meter_.timed(sim::SubOp::kIndex, [&] {
        return extract_features(object, extraction);
    });
    local_features_[object.id] = features;

    Bytes blob;
    meter_.timed(sim::SubOp::kEncrypt,
                 [&] { blob = encrypt_object_blob(object); });

    if (!trained_) {
        // Untrained adds optionally ship the encrypted feature blob so the
        // cloud holds training material for users without a local cache.
        Bytes efvs;
        if (store_features_in_cloud) {
            efvs = meter_.timed(sim::SubOp::kEncrypt, [&] {
                return encrypt_with_rk1(encode_features(features));
            });
        }
        net::MessageWriter writer;
        writer.write_u8(static_cast<std::uint8_t>(MsseOp::kStoreObject));
        writer.write_string(repo_id_);
        writer.write_u64(object.id);
        writer.write_bytes(blob);
        writer.write_bytes(efvs);
        call(writer.take(), /*synchronous=*/false);
        return;
    }

    // Trained update: counters come from the local replica when present;
    // a fresh client takes the server lock, downloads them once, and from
    // then on syncs the encrypted dictionaries back only periodically
    // (every kCounterSyncPeriod updates) rather than on every update.
    const bool fresh_replica = !counters_cache_.has_value();
    if (fresh_replica) counters_cache_ = fetch_counters(/*lock=*/true);
    auto& counters = *counters_cache_;
    const auto hists = modality_histograms(features);
    const auto entries = build_entries(object.id, hists, counters);

    constexpr std::uint64_t kCounterSyncPeriod = 32;
    const bool sync_counters =
        fresh_replica || (++updates_since_sync_ >= kCounterSyncPeriod);
    if (sync_counters) updates_since_sync_ = 0;

    net::MessageWriter writer;
    writer.write_u8(static_cast<std::uint8_t>(MsseOp::kTrainedUpdate));
    writer.write_string(repo_id_);
    writer.write_u64(object.id);
    writer.write_bytes(blob);
    write_entries(writer, entries);
    writer.write_u8(sync_counters ? 1 : 0);
    if (sync_counters) {
        for (std::size_t m = 0; m < kNumModalities; ++m) {
            const Bytes sealed = meter_.timed(sim::SubOp::kEncrypt, [&] {
                return encrypt_with_rk1(encode_counter_dict(counters[m]));
            });
            writer.write_bytes(sealed);
        }
    }
    call(writer.take(), /*synchronous=*/false);
}

void MsseClient::train() {
    // Assemble the training corpus: the local plaintext-feature cache,
    // topped up from the cloud for objects other users added.
    std::vector<std::pair<std::uint64_t, ExtractedFeatures>> corpus;
    {
        net::MessageWriter writer;
        writer.write_u8(static_cast<std::uint8_t>(MsseOp::kGetFeatures));
        writer.write_string(repo_id_);
        const Bytes response = call(writer.take(), /*synchronous=*/true);
        net::MessageReader reader(response);
        const auto count = reader.read_u32();
        for (std::uint32_t i = 0; i < count; ++i) {
            const std::uint64_t id = reader.read_u64();
            const Bytes sealed = reader.read_bytes();
            if (const auto it = local_features_.find(id);
                it != local_features_.end()) {
                corpus.emplace_back(id, it->second);
            } else if (!sealed.empty()) {
                const Bytes plain = meter_.timed(sim::SubOp::kEncrypt, [&] {
                    return decrypt_with_rk1(sealed);
                });
                corpus.emplace_back(id, decode_features(plain));
            }
            // Objects with neither a cloud feature blob nor a local cache
            // entry cannot be (re)indexed by this client and are skipped.
        }
    }

    // Machine learning on the device: hierarchical k-means codebook.
    meter_.timed(sim::SubOp::kTrain, [&] {
        std::vector<features::FeatureVec> training;
        std::size_t total = 0;
        for (const auto& [id, features] : corpus) {
            total += features.descriptors.size();
        }
        const std::size_t stride = std::max<std::size_t>(
            1, total / std::max<std::size_t>(1,
                                             train_params.max_training_samples));
        std::size_t cursor = 0;
        for (const auto& [id, features] : corpus) {
            for (const auto& descriptor : features.descriptors) {
                if (cursor++ % stride == 0) training.push_back(descriptor);
            }
        }
        index::VocabTree<index::EuclideanSpace>::Params tree_params;
        tree_params.branch = train_params.tree_branch;
        tree_params.depth = train_params.tree_depth;
        tree_params.kmeans_iterations = train_params.kmeans_iterations;
        if (!training.empty()) {
            trained_ = TrainedState{index::VocabTree<index::EuclideanSpace>::
                                        build(training, tree_params,
                                              train_params.seed)};
        } else {
            trained_ = TrainedState{};
        }
    });

    // Index every object on the device and upload the encrypted index.
    std::array<CounterDict, kNumModalities> counters;
    net::MessageWriter writer;
    writer.write_u8(static_cast<std::uint8_t>(MsseOp::kStoreIndex));
    writer.write_string(repo_id_);
    std::array<std::vector<IndexEntry>, kNumModalities> all_entries;
    for (const auto& [id, features] : corpus) {
        const auto hists = meter_.timed(sim::SubOp::kIndex, [&] {
            return modality_histograms(features);
        });
        auto entries = build_entries(id, hists, counters);
        for (std::size_t m = 0; m < kNumModalities; ++m) {
            all_entries[m].insert(all_entries[m].end(),
                                  std::make_move_iterator(entries[m].begin()),
                                  std::make_move_iterator(entries[m].end()));
        }
    }
    write_entries(writer, all_entries);
    for (std::size_t m = 0; m < kNumModalities; ++m) {
        const Bytes sealed = meter_.timed(sim::SubOp::kEncrypt, [&] {
            return encrypt_with_rk1(encode_counter_dict(counters[m]));
        });
        writer.write_bytes(sealed);
    }
    counters_cache_ = counters;
    call(writer.take(), /*synchronous=*/false);
}

void MsseClient::remove(std::uint64_t object_id) {
    local_features_.erase(object_id);
    net::MessageWriter writer;
    writer.write_u8(static_cast<std::uint8_t>(MsseOp::kRemove));
    writer.write_string(repo_id_);
    writer.write_u64(object_id);
    call(writer.take(), /*synchronous=*/false);
}

std::vector<SearchResult> MsseClient::search(
    const sim::MultimodalObject& query, std::size_t top_k) {
    const ExtractedFeatures features = meter_.timed(sim::SubOp::kIndex, [&] {
        return extract_features(query, extraction);
    });

    if (!trained_) {
        // Untrained path (Fig. 7 lines 4-10): download everything and do a
        // linear ranked search on the device.
        net::MessageWriter writer;
        writer.write_u8(static_cast<std::uint8_t>(MsseOp::kGetAllObjects));
        writer.write_string(repo_id_);
        const Bytes response = call(writer.take(), /*synchronous=*/true);
        net::MessageReader reader(response);
        const auto count = reader.read_u32();
        std::vector<PlainScoredObject> objects;
        objects.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
            PlainScoredObject object;
            object.id = reader.read_u64();
            object.blob = reader.read_bytes();
            const Bytes sealed_features = reader.read_bytes();
            object.features =
                decode_features(meter_.timed(sim::SubOp::kEncrypt, [&] {
                    return decrypt_with_rk1(sealed_features);
                }));
            objects.push_back(std::move(object));
        }
        const auto fused = meter_.timed(sim::SubOp::kIndex, [&] {
            return linear_ranked_search(features, objects, top_k);
        });
        std::vector<SearchResult> results;
        for (const auto& [doc, score] : fused) {
            const auto it = std::find_if(
                objects.begin(), objects.end(),
                [doc](const PlainScoredObject& o) { return o.id == doc; });
            results.push_back(SearchResult{doc, score, it->blob});
        }
        return results;
    }

    // Trained path: expand query terms into labels using the counter
    // replica (fetched once if absent).
    if (!counters_cache_) counters_cache_ = fetch_counters(/*lock=*/false);
    auto& counters = *counters_cache_;
    const auto hists = meter_.timed(sim::SubOp::kIndex, [&] {
        return modality_histograms(features);
    });

    net::MessageWriter writer;
    writer.write_u8(static_cast<std::uint8_t>(MsseOp::kSearch));
    writer.write_string(repo_id_);
    writer.write_u32(static_cast<std::uint32_t>(top_k));
    for (std::size_t m = 0; m < kNumModalities; ++m) {
        std::vector<QueryTerm> query_terms;
        meter_.timed(sim::SubOp::kIndex, [&] {
            for (const auto& [raw_term, freq] : hists[m]) {
                const std::string term =
                    modality_term(static_cast<Modality>(m), raw_term);
                const auto counter_it = counters[m].find(term);
                if (counter_it == counters[m].end()) continue;
                QueryTerm qt;
                const Bytes k1 = derive_k1(rk2_, term);
                qt.value_key = derive_k2(rk2_, term);
                qt.query_freq = freq;
                qt.labels.reserve(counter_it->second);
                // One keyed PRF per term: the HMAC midstate cache halves
                // the compressions across the per-counter label loop.
                crypto::Prf label_prf(k1);
                for (std::uint64_t c = 0; c < counter_it->second; ++c) {
                    qt.labels.push_back(label_prf.eval_counter(c));
                }
                query_terms.push_back(std::move(qt));
            }
        });
        writer.write_u32(static_cast<std::uint32_t>(query_terms.size()));
        for (const auto& qt : query_terms) {
            writer.write_u32(static_cast<std::uint32_t>(qt.labels.size()));
            for (const auto& label : qt.labels) writer.write_bytes(label);
            writer.write_bytes(qt.value_key);
            writer.write_u32(qt.query_freq);
        }
    }

    const Bytes response = call(writer.take(), /*synchronous=*/true);
    net::MessageReader reader(response);
    const auto count = reader.read_u32();
    std::vector<SearchResult> results;
    results.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        SearchResult result;
        result.object_id = reader.read_u64();
        result.score = reader.read_f64();
        result.encrypted_object = reader.read_bytes();
        results.push_back(std::move(result));
    }
    return results;
}

sim::MultimodalObject MsseClient::decrypt_result(
    const SearchResult& result) const {
    const crypto::AesCtr cipher(keyring_.data_key(result.object_id));
    return mie::decode_object(cipher.open(result.encrypted_object));
}

}  // namespace mie::baseline
