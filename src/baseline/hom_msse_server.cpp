#include "baseline/hom_msse_server.hpp"

#include <algorithm>
#include <cmath>

#include "net/envelope.hpp"

namespace mie::baseline {

using crypto::BigUint;

namespace {
std::string label_key(BytesView label) {
    return std::string(label.begin(), label.end());
}
}  // namespace

Bytes HomMsseServer::handle(BytesView request) {
    request = net::envelope_inner(request);  // strip idempotency envelope
    const std::scoped_lock lock(mutex_);
    net::MessageReader reader(request);
    const auto op = static_cast<HomOp>(reader.read_u8());
    switch (op) {
        case HomOp::kCreate: return handle_create(reader);
        case HomOp::kStoreObject: return handle_store_object(reader);
        case HomOp::kGetFeatures: return handle_get_features(reader);
        case HomOp::kStoreIndex: return handle_store_index(reader);
        case HomOp::kGetAndIncCtrs: return handle_get_and_inc_ctrs(reader);
        case HomOp::kTrainedUpdate: return handle_trained_update(reader);
        case HomOp::kRemove: return handle_remove(reader);
        case HomOp::kSearch: return handle_search(reader);
        case HomOp::kGetAllObjects: return handle_get_all_objects(reader);
    }
    throw std::invalid_argument("HomMsseServer: unknown opcode");
}

HomMsseServer::Repository& HomMsseServer::require_repo(
    const std::string& repo_id) {
    const auto it = repositories_.find(repo_id);
    if (it == repositories_.end()) {
        throw std::invalid_argument("HomMsseServer: unknown repository " +
                                    repo_id);
    }
    return it->second;
}

Bytes HomMsseServer::handle_create(net::MessageReader& reader) {
    const std::string repo_id = reader.read_string();
    Repository repo;
    repo.n = BigUint::from_bytes_be(reader.read_bytes());
    repo.n_squared = repo.n * repo.n;
    repo.mont.emplace(repo.n_squared);
    repositories_[repo_id] = std::move(repo);
    net::MessageWriter writer;
    writer.write_u8(1);
    return writer.take();
}

Bytes HomMsseServer::handle_store_object(net::MessageReader& reader) {
    Repository& repo = require_repo(reader.read_string());
    const std::uint64_t id = reader.read_u64();
    repo.objects[id] = reader.read_bytes();
    repo.features[id] = reader.read_bytes();
    net::MessageWriter writer;
    writer.write_u8(1);
    return writer.take();
}

Bytes HomMsseServer::handle_get_features(net::MessageReader& reader) {
    Repository& repo = require_repo(reader.read_string());
    net::MessageWriter writer;
    // One entry per stored object; the feature blob is empty for objects
    // whose writer kept features in local state (the client falls back to
    // its own cache for those).
    writer.write_u32(static_cast<std::uint32_t>(repo.objects.size()));
    // Wire order must not leak hash-map iteration order (lint rule R3).
    std::vector<std::uint64_t> ids;
    ids.reserve(repo.objects.size());
    // mielint: allow(R3): ids are sorted on the next line
    for (const auto& [id, blob] : repo.objects) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    for (const std::uint64_t id : ids) {
        writer.write_u64(id);
        const auto it = repo.features.find(id);
        writer.write_bytes(it == repo.features.end() ? Bytes{} : it->second);
    }
    return writer.take();
}

void HomMsseServer::insert_entries(Repository& repo,
                                   net::MessageReader& reader) {
    for (std::size_t modality = 0; modality < kNumModalities; ++modality) {
        const auto count = reader.read_u32();
        for (std::uint32_t i = 0; i < count; ++i) {
            const Bytes label = reader.read_bytes();
            const std::uint64_t doc = reader.read_u64();
            const Bytes efreq = reader.read_bytes();
            const std::string key = label_key(label);
            repo.index[modality][key] =
                IndexValue{doc, BigUint::from_bytes_be(efreq)};
            repo.doc_labels[doc].emplace_back(static_cast<int>(modality),
                                              key);
        }
    }
}

Bytes HomMsseServer::handle_store_index(net::MessageReader& reader) {
    Repository& repo = require_repo(reader.read_string());
    // mielint: allow(R3): iterates the fixed-size modality array
    for (auto& modality_index : repo.index) modality_index.clear();
    repo.doc_labels.clear();
    insert_entries(repo, reader);
    for (std::size_t m = 0; m < kNumModalities; ++m) {
        repo.counters[m].clear();
        const auto count = reader.read_u32();
        for (std::uint32_t i = 0; i < count; ++i) {
            const std::string id = reader.read_string();
            repo.counters[m][id] = BigUint::from_bytes_be(reader.read_bytes());
        }
    }
    net::MessageWriter writer;
    writer.write_u8(1);
    return writer.take();
}

Bytes HomMsseServer::handle_get_and_inc_ctrs(net::MessageReader& reader) {
    Repository& repo = require_repo(reader.read_string());
    net::MessageWriter writer;
    for (std::size_t m = 0; m < kNumModalities; ++m) {
        const auto count = reader.read_u32();
        writer.write_u32(count);
        for (std::uint32_t i = 0; i < count; ++i) {
            const std::string term = reader.read_string();
            const BigUint increment =
                BigUint::from_bytes_be(reader.read_bytes());
            auto it = repo.counters[m].find(term);
            if (it == repo.counters[m].end()) {
                // Fresh counter: Enc(0) with r = 1 is the ciphertext 1; the
                // server learns nothing it didn't know (new term id).
                it = repo.counters[m].emplace(term, BigUint(1)).first;
            }
            // Return the value *before* incrementing (Fig. 8 semantics).
            writer.write_string(term);
            writer.write_bytes(it->second.to_bytes_be());
            it->second = repo.mont->mul(it->second, increment);
        }
    }
    return writer.take();
}

Bytes HomMsseServer::handle_trained_update(net::MessageReader& reader) {
    Repository& repo = require_repo(reader.read_string());
    const std::uint64_t id = reader.read_u64();
    if (const auto it = repo.doc_labels.find(id);
        it != repo.doc_labels.end()) {
        for (const auto& [modality, key] : it->second) {
            repo.index[static_cast<std::size_t>(modality)].erase(key);
        }
        repo.doc_labels.erase(it);
    }
    repo.objects[id] = reader.read_bytes();
    repo.features.erase(id);  // trained updates carry no feature blob
    insert_entries(repo, reader);
    net::MessageWriter writer;
    writer.write_u8(1);
    return writer.take();
}

Bytes HomMsseServer::handle_remove(net::MessageReader& reader) {
    Repository& repo = require_repo(reader.read_string());
    const std::uint64_t id = reader.read_u64();
    const bool existed = repo.objects.erase(id) > 0;
    repo.features.erase(id);
    if (const auto it = repo.doc_labels.find(id);
        it != repo.doc_labels.end()) {
        for (const auto& [modality, key] : it->second) {
            repo.index[static_cast<std::size_t>(modality)].erase(key);
        }
        repo.doc_labels.erase(it);
    }
    net::MessageWriter writer;
    writer.write_u8(existed ? 1 : 0);
    return writer.take();
}

Bytes HomMsseServer::handle_search(net::MessageReader& reader) {
    Repository& repo = require_repo(reader.read_string());
    const double total_docs = static_cast<double>(repo.objects.size());

    // Per modality: per-document encrypted score accumulators. Enc(0) with
    // r = 1 is the multiplicative identity 1.
    std::array<std::unordered_map<std::uint64_t, BigUint>, kNumModalities>
        scores;

    for (std::size_t modality = 0; modality < kNumModalities; ++modality) {
        const auto num_terms = reader.read_u32();
        for (std::uint32_t t = 0; t < num_terms; ++t) {
            const auto num_labels = reader.read_u32();
            std::vector<Bytes> labels;
            labels.reserve(num_labels);
            for (std::uint32_t l = 0; l < num_labels; ++l) {
                labels.push_back(reader.read_bytes());
            }
            const auto query_freq = reader.read_u32();

            std::vector<const IndexValue*> postings;
            for (const Bytes& label : labels) {
                const auto it = repo.index[modality].find(label_key(label));
                if (it != repo.index[modality].end()) {
                    postings.push_back(&it->second);
                }
            }
            if (postings.empty() || total_docs == 0.0) continue;
            // idf is computable from public information (N and df); scale
            // to a positive integer weight for the homomorphic exponent.
            const double idf =
                std::log(total_docs / static_cast<double>(postings.size()));
            const auto weight = static_cast<std::uint64_t>(
                std::llround(std::max(0.0, idf) * 1000.0)) *
                query_freq;
            if (weight == 0) continue;
            for (const IndexValue* value : postings) {
                const BigUint contribution =
                    repo.mont->pow(value->encrypted_freq, BigUint(weight));
                auto [it, inserted] =
                    scores[modality].try_emplace(value->doc, contribution);
                if (!inserted) {
                    it->second = repo.mont->mul(it->second, contribution);
                }
            }
        }
    }

    // Return *everything*: all blobs plus per-modality encrypted scores,
    // both in sorted order so the response bytes are independent of
    // hash-map iteration order (lint rule R3).
    net::MessageWriter writer;
    writer.write_u32(static_cast<std::uint32_t>(repo.objects.size()));
    std::vector<std::uint64_t> ids;
    ids.reserve(repo.objects.size());
    // mielint: allow(R3): ids are sorted on the next line
    for (const auto& [id, blob] : repo.objects) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    for (const std::uint64_t id : ids) {
        writer.write_u64(id);
        writer.write_bytes(repo.objects.at(id));
    }
    for (std::size_t m = 0; m < kNumModalities; ++m) {
        writer.write_u32(static_cast<std::uint32_t>(scores[m].size()));
        std::vector<std::uint64_t> docs;
        docs.reserve(scores[m].size());
        // mielint: allow(R3): ids are sorted on the next line
        for (const auto& [doc, escore] : scores[m]) docs.push_back(doc);
        std::sort(docs.begin(), docs.end());
        for (const std::uint64_t doc : docs) {
            writer.write_u64(doc);
            writer.write_bytes(scores[m].at(doc).to_bytes_be());
        }
    }
    return writer.take();
}

Bytes HomMsseServer::handle_get_all_objects(net::MessageReader& reader) {
    Repository& repo = require_repo(reader.read_string());
    net::MessageWriter writer;
    writer.write_u32(static_cast<std::uint32_t>(repo.objects.size()));
    // Wire order must not leak hash-map iteration order (lint rule R3).
    std::vector<std::uint64_t> ids;
    ids.reserve(repo.objects.size());
    // mielint: allow(R3): ids are sorted on the next line
    for (const auto& [id, blob] : repo.objects) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    for (const std::uint64_t id : ids) {
        writer.write_u64(id);
        writer.write_bytes(repo.objects.at(id));
        writer.write_bytes(repo.features.at(id));
    }
    return writer.take();
}

HomMsseServer::RepoStats HomMsseServer::stats(
    const std::string& repo_id) const {
    const std::scoped_lock lock(mutex_);
    const auto it = repositories_.find(repo_id);
    if (it == repositories_.end()) {
        throw std::invalid_argument("HomMsseServer: unknown repository");
    }
    std::size_t entries = 0, counter_entries = 0;
    // mielint: allow(R3): iterates the fixed-size modality array
    for (const auto& modality_index : it->second.index) {
        entries += modality_index.size();
    }
    // mielint: allow(R3): iterates the fixed-size modality array
    for (const auto& counters : it->second.counters) {
        counter_entries += counters.size();
    }
    return RepoStats{
        .num_objects = it->second.objects.size(),
        .index_entries = entries,
        .counter_entries = counter_entries,
    };
}

}  // namespace mie::baseline
