// MSSE cloud server (paper appendix, Fig. 7, cloud side).
//
// Unlike the MIE server, this server is a dumb encrypted store: the client
// builds the index. The server keeps, per repository:
//   * encrypted data-object blobs and encrypted feature blobs (the client
//     re-downloads the latter to train locally);
//   * per-modality label -> (doc, Enc(freq)) index maps, plus a reverse
//     doc -> labels map maintained "in background" to speed up removals;
//   * the encrypted counter dictionaries, with a write lock so concurrent
//     updaters cannot clobber each other's counter increments (the
//     centralized consistency mechanism of the appendix).
// At search time the server receives per-term label lists and value keys,
// decrypts frequencies (MSSE's freq(w) leakage), computes TF-IDF per
// modality, fuses, and returns the top-k.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "baseline/msse_common.hpp"
#include "index/scoring.hpp"
#include "net/transport.hpp"

namespace mie::baseline {

enum class MsseOp : std::uint8_t {
    kCreate = 1,
    kStoreObject = 2,     ///< untrained update: blob + encrypted features
    kGetFeatures = 3,     ///< train step 1: download all encrypted features
    kStoreIndex = 4,      ///< train step 2: upload index + counters
    kGetCtrs = 5,         ///< download counters (flag: lock for write)
    kTrainedUpdate = 6,   ///< entries + new counters + blob (+ unlock)
    kRemove = 7,
    kSearch = 8,
    kGetAllObjects = 9,   ///< untrained search support
};

/// Opcodes that change server state (including the counter lock), i.e.
/// the requests clients wrap in an idempotency envelope so retries are
/// replay-safe behind a dedup-aware server.
constexpr bool is_mutating(MsseOp op) {
    switch (op) {
        case MsseOp::kCreate:
        case MsseOp::kStoreObject:
        case MsseOp::kStoreIndex:
        case MsseOp::kGetCtrs:  // may take the counter lock
        case MsseOp::kTrainedUpdate:
        case MsseOp::kRemove:
            return true;
        case MsseOp::kGetFeatures:
        case MsseOp::kSearch:
        case MsseOp::kGetAllObjects:
            return false;
    }
    return false;
}

/// Thrown (server-side) and surfaced when a second writer requests the
/// counter lock while it is held: the coordination cost MIE avoids.
class CounterLockedError : public std::runtime_error {
public:
    CounterLockedError() : std::runtime_error("MSSE: counters locked") {}
};

class MsseServer final : public net::RequestHandler {
public:
    Bytes handle(BytesView request) override;

    struct RepoStats {
        std::size_t num_objects = 0;
        std::size_t index_entries = 0;
        bool counters_locked = false;
    };
    RepoStats stats(const std::string& repo_id) const;

private:
    struct IndexValue {
        std::uint64_t doc = 0;
        Bytes encrypted_freq;
    };
    struct Repository {
        std::unordered_map<std::uint64_t, Bytes> objects;  ///< blobs
        std::unordered_map<std::uint64_t, Bytes> features; ///< enc. fvs
        // Per-modality PRF-label index.
        std::array<std::unordered_map<std::string, IndexValue>,
                   kNumModalities>
            index;
        // Reverse map for removals.
        std::unordered_map<std::uint64_t, std::vector<std::pair<int, std::string>>>
            doc_labels;
        // Encrypted counter dictionaries (one blob per modality).
        std::array<Bytes, kNumModalities> counters;
        bool counters_locked = false;
    };

    Bytes handle_create(net::MessageReader& reader);
    Bytes handle_store_object(net::MessageReader& reader);
    Bytes handle_get_features(net::MessageReader& reader);
    Bytes handle_store_index(net::MessageReader& reader);
    Bytes handle_get_ctrs(net::MessageReader& reader);
    Bytes handle_trained_update(net::MessageReader& reader);
    Bytes handle_remove(net::MessageReader& reader);
    Bytes handle_search(net::MessageReader& reader);
    Bytes handle_get_all_objects(net::MessageReader& reader);

    void insert_entries(Repository& repo, net::MessageReader& reader);

    Repository& require_repo(const std::string& repo_id);

    mutable std::mutex mutex_;
    std::unordered_map<std::string, Repository> repositories_;
};

}  // namespace mie::baseline
