// MSSE client (paper appendix, Fig. 7, user side).
//
// The defining contrast with MIE: everything heavy happens on the client.
// Training downloads the (locally cached) feature vectors, runs Euclidean
// hierarchical k-means *on the device*, quantizes every object against the
// resulting codebook, and uploads an encrypted index whose positions are
// PRF-labelled counters. Trained updates must first fetch and lock the
// encrypted counter dictionaries (the multi-writer coordination MIE does
// not need), and searching expands each query term into its candidate
// labels client-side.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "baseline/msse_common.hpp"
#include "crypto/secret.hpp"
#include "baseline/msse_server.hpp"
#include "index/space.hpp"
#include "index/vocab_tree.hpp"
#include "mie/keys.hpp"
#include "mie/scheme.hpp"
#include "net/transport.hpp"

namespace mie::baseline {

/// Client-side training parameters (codebook construction).
struct MsseTrainParams {
    std::size_t tree_branch = 10;
    std::size_t tree_depth = 3;
    int kmeans_iterations = 8;
    std::size_t max_training_samples = 20000;
    std::uint64_t seed = 2017;
};

class MsseClient final : public SearchableScheme {
public:
    /// rk1 keys feature/counter encryption (AES-256); rk2 keys label
    /// derivation (PRF). Both derived from `repo_entropy`.
    MsseClient(net::Transport& transport, std::string repo_id,
               BytesView repo_entropy, Bytes user_secret,
               double device_cpu_scale = 1.0);

    std::string name() const override { return "MSSE"; }

    void create_repository() override;
    void train() override;
    void update(const sim::MultimodalObject& object) override;
    void remove(std::uint64_t object_id) override;
    std::vector<SearchResult> search(const sim::MultimodalObject& query,
                                     std::size_t top_k) override;

    sim::CostMeter& meter() override { return meter_; }

    sim::MultimodalObject decrypt_result(const SearchResult& result) const;

    bool trained() const { return trained_.has_value(); }

    MsseTrainParams train_params;
    ExtractionParams extraction;

    /// When true (default), untrained adds upload the AES-encrypted feature
    /// blob so the cloud holds training material for other users. Single-
    /// user deployments (the paper's measured configuration) can disable
    /// this and rely on the client's O(n) plaintext-feature cache, keeping
    /// update traffic to blob + index entries.
    bool store_features_in_cloud = true;

private:
    struct TrainedState {
        index::VocabTree<index::EuclideanSpace> codebook;
    };

    /// Per-modality term histograms of one object.
    std::array<features::TermHistogram, kNumModalities> modality_histograms(
        const ExtractedFeatures& features) const;

    /// Builds index entries for one object, advancing `counters`.
    std::array<std::vector<IndexEntry>, kNumModalities> build_entries(
        std::uint64_t doc,
        const std::array<features::TermHistogram, kNumModalities>& hists,
        std::array<CounterDict, kNumModalities>& counters);

    Bytes encrypt_with_rk1(BytesView plaintext);
    Bytes decrypt_with_rk1(BytesView sealed) const;
    Bytes encrypt_object_blob(const sim::MultimodalObject& object);

    std::array<CounterDict, kNumModalities> fetch_counters(bool lock);
    Bytes call(BytesView request, bool synchronous);

    void write_entries(net::MessageWriter& writer,
                       const std::array<std::vector<IndexEntry>,
                                        kNumModalities>& entries) const;

    net::Transport& transport_;
    std::string repo_id_;
    crypto::SecretBytes rk1_;  ///< AES key for features + counters
    crypto::SecretBytes rk2_;  ///< PRF key for labels / value keys
    /// Idempotency-envelope identity for mutating requests.
    std::uint64_t op_client_id_ = 0;
    std::uint64_t op_seq_ = 0;
    DataKeyring keyring_;
    sim::CostMeter meter_;
    std::optional<TrainedState> trained_;
    /// Local counter replica (part of the scheme's O(n) client storage, as
    /// in Cash'14): avoids a GetCtrs round trip per operation. A fresh
    /// client joining an existing repository populates it via GetCtrs.
    std::optional<std::array<CounterDict, kNumModalities>> counters_cache_;
    std::uint64_t updates_since_sync_ = 0;
    std::uint64_t nonce_counter_ = 0;
    /// Local plaintext-feature cache (this is the O(n) client storage the
    /// complexity table charges to Cash'14-style schemes).
    std::unordered_map<std::uint64_t, ExtractedFeatures> local_features_;
};

}  // namespace mie::baseline
