#include "baseline/msse_server.hpp"

#include <algorithm>
#include <cmath>

#include "crypto/ctr.hpp"
#include "fusion/rank_fusion.hpp"
#include "net/envelope.hpp"

namespace mie::baseline {

namespace {
std::string label_key(BytesView label) {
    return std::string(label.begin(), label.end());
}
}  // namespace

Bytes MsseServer::handle(BytesView request) {
    request = net::envelope_inner(request);  // strip idempotency envelope
    const std::scoped_lock lock(mutex_);
    net::MessageReader reader(request);
    const auto op = static_cast<MsseOp>(reader.read_u8());
    switch (op) {
        case MsseOp::kCreate: return handle_create(reader);
        case MsseOp::kStoreObject: return handle_store_object(reader);
        case MsseOp::kGetFeatures: return handle_get_features(reader);
        case MsseOp::kStoreIndex: return handle_store_index(reader);
        case MsseOp::kGetCtrs: return handle_get_ctrs(reader);
        case MsseOp::kTrainedUpdate: return handle_trained_update(reader);
        case MsseOp::kRemove: return handle_remove(reader);
        case MsseOp::kSearch: return handle_search(reader);
        case MsseOp::kGetAllObjects: return handle_get_all_objects(reader);
    }
    throw std::invalid_argument("MsseServer: unknown opcode");
}

MsseServer::Repository& MsseServer::require_repo(const std::string& repo_id) {
    const auto it = repositories_.find(repo_id);
    if (it == repositories_.end()) {
        throw std::invalid_argument("MsseServer: unknown repository " +
                                    repo_id);
    }
    return it->second;
}

Bytes MsseServer::handle_create(net::MessageReader& reader) {
    const std::string repo_id = reader.read_string();
    repositories_[repo_id] = Repository{};
    net::MessageWriter writer;
    writer.write_u8(1);
    return writer.take();
}

Bytes MsseServer::handle_store_object(net::MessageReader& reader) {
    Repository& repo = require_repo(reader.read_string());
    const std::uint64_t id = reader.read_u64();
    repo.objects[id] = reader.read_bytes();
    repo.features[id] = reader.read_bytes();
    net::MessageWriter writer;
    writer.write_u8(1);
    return writer.take();
}

Bytes MsseServer::handle_get_features(net::MessageReader& reader) {
    Repository& repo = require_repo(reader.read_string());
    net::MessageWriter writer;
    // One entry per stored object; the feature blob is empty for objects
    // whose writer kept features in local state (the client falls back to
    // its own cache for those).
    writer.write_u32(static_cast<std::uint32_t>(repo.objects.size()));
    // Wire order must not leak hash-map iteration order (lint rule R3).
    std::vector<std::uint64_t> ids;
    ids.reserve(repo.objects.size());
    // mielint: allow(R3): ids are sorted on the next line
    for (const auto& [id, blob] : repo.objects) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    for (const std::uint64_t id : ids) {
        writer.write_u64(id);
        const auto it = repo.features.find(id);
        writer.write_bytes(it == repo.features.end() ? Bytes{} : it->second);
    }
    return writer.take();
}

void MsseServer::insert_entries(Repository& repo,
                                net::MessageReader& reader) {
    for (std::size_t modality = 0; modality < kNumModalities; ++modality) {
        const auto count = reader.read_u32();
        for (std::uint32_t i = 0; i < count; ++i) {
            const Bytes label = reader.read_bytes();
            const std::uint64_t doc = reader.read_u64();
            Bytes encrypted_freq = reader.read_bytes();
            const std::string key = label_key(label);
            repo.index[modality][key] =
                IndexValue{doc, std::move(encrypted_freq)};
            repo.doc_labels[doc].emplace_back(static_cast<int>(modality),
                                              key);
        }
    }
}

Bytes MsseServer::handle_store_index(net::MessageReader& reader) {
    Repository& repo = require_repo(reader.read_string());
    // A fresh index replaces any previous one (train rebuilds from scratch).
    // mielint: allow(R3): iterates the fixed-size modality array
    for (auto& modality_index : repo.index) modality_index.clear();
    repo.doc_labels.clear();
    insert_entries(repo, reader);
    for (std::size_t m = 0; m < kNumModalities; ++m) {
        repo.counters[m] = reader.read_bytes();
    }
    repo.counters_locked = false;
    net::MessageWriter writer;
    writer.write_u8(1);
    return writer.take();
}

Bytes MsseServer::handle_get_ctrs(net::MessageReader& reader) {
    Repository& repo = require_repo(reader.read_string());
    const bool lock_for_write = reader.read_u8() != 0;
    if (lock_for_write) {
        if (repo.counters_locked) throw CounterLockedError();
        repo.counters_locked = true;
    }
    net::MessageWriter writer;
    for (std::size_t m = 0; m < kNumModalities; ++m) {
        writer.write_bytes(repo.counters[m]);
    }
    return writer.take();
}

Bytes MsseServer::handle_trained_update(net::MessageReader& reader) {
    Repository& repo = require_repo(reader.read_string());
    const std::uint64_t id = reader.read_u64();

    // Re-adding an object first drops its old postings (Fig. 7 line 37).
    if (const auto it = repo.doc_labels.find(id);
        it != repo.doc_labels.end()) {
        for (const auto& [modality, key] : it->second) {
            repo.index[static_cast<std::size_t>(modality)].erase(key);
        }
        repo.doc_labels.erase(it);
    }

    repo.objects[id] = reader.read_bytes();
    // Trained updates carry no feature blob and no counter dictionaries:
    // the client keeps both in its O(n) local state (Cash'14 model), so
    // the upload is just the processed index entries — which is why MSSE's
    // update traffic is smaller than MIE's in Figs. 2-3. The encrypted
    // counter dictionaries on the server are refreshed by StoreIndex and
    // by explicit counter syncs. Stale features are dropped.
    repo.features.erase(id);
    insert_entries(repo, reader);
    if (reader.read_u8() != 0) {  // optional counter sync piggyback
        for (std::size_t m = 0; m < kNumModalities; ++m) {
            repo.counters[m] = reader.read_bytes();
        }
    }
    repo.counters_locked = false;  // write lock released with the upload
    net::MessageWriter writer;
    writer.write_u8(1);
    return writer.take();
}

Bytes MsseServer::handle_remove(net::MessageReader& reader) {
    Repository& repo = require_repo(reader.read_string());
    const std::uint64_t id = reader.read_u64();
    const bool existed = repo.objects.erase(id) > 0;
    repo.features.erase(id);
    if (const auto it = repo.doc_labels.find(id);
        it != repo.doc_labels.end()) {
        for (const auto& [modality, key] : it->second) {
            repo.index[static_cast<std::size_t>(modality)].erase(key);
        }
        repo.doc_labels.erase(it);
    }
    net::MessageWriter writer;
    writer.write_u8(existed ? 1 : 0);
    return writer.take();
}

Bytes MsseServer::handle_search(net::MessageReader& reader) {
    Repository& repo = require_repo(reader.read_string());
    const auto top_k = static_cast<std::size_t>(reader.read_u32());
    const double total_docs = static_cast<double>(repo.objects.size());

    std::array<fusion::RankedList, kNumModalities> ranked;
    for (std::size_t modality = 0; modality < kNumModalities; ++modality) {
        std::map<index::DocId, double> scores;
        const auto num_terms = reader.read_u32();
        for (std::uint32_t t = 0; t < num_terms; ++t) {
            const auto num_labels = reader.read_u32();
            std::vector<Bytes> labels;
            labels.reserve(num_labels);
            for (std::uint32_t l = 0; l < num_labels; ++l) {
                labels.push_back(reader.read_bytes());
            }
            const Bytes k2 = reader.read_bytes();
            const auto query_freq = reader.read_u32();

            // Collect matching postings; tf values are decrypted with the
            // per-term value key the client just revealed (freq leakage).
            std::vector<std::pair<index::DocId, std::uint32_t>> postings;
            for (const Bytes& label : labels) {
                const auto it =
                    repo.index[modality].find(label_key(label));
                if (it == repo.index[modality].end()) continue;
                const crypto::AesCtr cipher(k2);
                const Bytes plain = cipher.open(it->second.encrypted_freq);
                postings.emplace_back(
                    it->second.doc,
                    read_le<std::uint32_t>(plain, 0));
            }
            if (postings.empty() || total_docs == 0.0) continue;
            const double idf =
                std::log(total_docs / static_cast<double>(postings.size()));
            if (idf <= 0.0) continue;
            for (const auto& [doc, freq] : postings) {
                scores[doc] += static_cast<double>(query_freq) * freq * idf;
            }
        }
        const std::size_t pool = std::max<std::size_t>(top_k * 4, 32);
        ranked[modality] = index::top_k_of(std::move(scores), pool);
    }

    const auto fused = fusion::log_isr_fusion(ranked, top_k);
    net::MessageWriter writer;
    writer.write_u32(static_cast<std::uint32_t>(fused.size()));
    for (const auto& item : fused) {
        writer.write_u64(item.doc);
        writer.write_f64(item.score);
        writer.write_bytes(repo.objects.at(item.doc));
    }
    return writer.take();
}

Bytes MsseServer::handle_get_all_objects(net::MessageReader& reader) {
    Repository& repo = require_repo(reader.read_string());
    net::MessageWriter writer;
    writer.write_u32(static_cast<std::uint32_t>(repo.objects.size()));
    // Wire order must not leak hash-map iteration order (lint rule R3).
    std::vector<std::uint64_t> ids;
    ids.reserve(repo.objects.size());
    // mielint: allow(R3): ids are sorted on the next line
    for (const auto& [id, blob] : repo.objects) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    for (const std::uint64_t id : ids) {
        writer.write_u64(id);
        writer.write_bytes(repo.objects.at(id));
        writer.write_bytes(repo.features.at(id));
    }
    return writer.take();
}

MsseServer::RepoStats MsseServer::stats(const std::string& repo_id) const {
    const std::scoped_lock lock(mutex_);
    const auto it = repositories_.find(repo_id);
    if (it == repositories_.end()) {
        throw std::invalid_argument("MsseServer: unknown repository");
    }
    std::size_t entries = 0;
    // mielint: allow(R3): iterates the fixed-size modality array
    for (const auto& modality_index : it->second.index) {
        entries += modality_index.size();
    }
    return RepoStats{
        .num_objects = it->second.objects.size(),
        .index_entries = entries,
        .counters_locked = it->second.counters_locked,
    };
}

}  // namespace mie::baseline
