// Hom-MSSE cloud server (paper appendix, Fig. 8, cloud side).
//
// Iterates on MSSE: index frequencies and update counters are encrypted
// under the client's additively-homomorphic Paillier key, so the server
// never learns them (no freq(w) leakage). Consequences implemented here:
//   * GetAndIncCtrs: the server returns current encrypted counters and
//     homomorphically increments them by client-supplied encrypted amounts
//     (some of which are Enc(0) padding) — no write lock needed;
//   * Search: the server combines encrypted frequencies into per-document
//     encrypted TF-IDF scores (Enc(freq)^(qfreq*idf_scaled), multiplied
//     across terms) and returns *all* documents' scores and blobs; sorting
//     and fusion fall back to the client, which is what makes Hom-MSSE's
//     search so much more expensive (Fig. 5).
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "baseline/msse_common.hpp"
#include "crypto/bignum.hpp"
#include "net/transport.hpp"

namespace mie::baseline {

enum class HomOp : std::uint8_t {
    kCreate = 1,       ///< repo id + Paillier public modulus n
    kStoreObject = 2,
    kGetFeatures = 3,
    kStoreIndex = 4,   ///< entries + encrypted counter map
    kGetAndIncCtrs = 5,
    kTrainedUpdate = 6,
    kRemove = 7,
    kSearch = 8,       ///< returns all docs' encrypted scores + blobs
    kGetAllObjects = 9,
};

/// Opcodes that change server state (counters included); see
/// baseline::is_mutating(MsseOp) for the role this plays in retries.
constexpr bool is_mutating(HomOp op) {
    switch (op) {
        case HomOp::kCreate:
        case HomOp::kStoreObject:
        case HomOp::kStoreIndex:
        case HomOp::kGetAndIncCtrs:  // increments counters server-side
        case HomOp::kTrainedUpdate:
        case HomOp::kRemove:
            return true;
        case HomOp::kGetFeatures:
        case HomOp::kSearch:
        case HomOp::kGetAllObjects:
            return false;
    }
    return false;
}

class HomMsseServer final : public net::RequestHandler {
public:
    Bytes handle(BytesView request) override;

    struct RepoStats {
        std::size_t num_objects = 0;
        std::size_t index_entries = 0;
        std::size_t counter_entries = 0;
    };
    RepoStats stats(const std::string& repo_id) const;

private:
    struct IndexValue {
        std::uint64_t doc = 0;
        crypto::BigUint encrypted_freq;  ///< Paillier ciphertext
    };
    struct Repository {
        crypto::BigUint n;          ///< Paillier public modulus
        crypto::BigUint n_squared;
        std::optional<crypto::Montgomery> mont;  ///< over n^2
        std::unordered_map<std::uint64_t, Bytes> objects;
        std::unordered_map<std::uint64_t, Bytes> features;
        std::array<std::unordered_map<std::string, IndexValue>,
                   kNumModalities>
            index;
        std::unordered_map<std::uint64_t,
                           std::vector<std::pair<int, std::string>>>
            doc_labels;
        /// Per-modality term-id -> Paillier-encrypted counter.
        std::array<std::unordered_map<std::string, crypto::BigUint>,
                   kNumModalities>
            counters;
    };

    Bytes handle_create(net::MessageReader& reader);
    Bytes handle_store_object(net::MessageReader& reader);
    Bytes handle_get_features(net::MessageReader& reader);
    Bytes handle_store_index(net::MessageReader& reader);
    Bytes handle_get_and_inc_ctrs(net::MessageReader& reader);
    Bytes handle_trained_update(net::MessageReader& reader);
    Bytes handle_remove(net::MessageReader& reader);
    Bytes handle_search(net::MessageReader& reader);
    Bytes handle_get_all_objects(net::MessageReader& reader);

    void insert_entries(Repository& repo, net::MessageReader& reader);
    Repository& require_repo(const std::string& repo_id);

    mutable std::mutex mutex_;
    std::unordered_map<std::string, Repository> repositories_;
};

}  // namespace mie::baseline
