// Hom-MSSE client (paper appendix, Fig. 8, user side).
//
// Same structure as the MSSE client, but frequencies and counters are
// Paillier-encrypted. The client pays for it everywhere: every index entry
// is a homomorphic encryption, counter fetches require homomorphic
// decryption, and searching ends with the client decrypting one score per
// (document, modality) and doing the sort/fusion itself. This is the
// "worst Encrypt performance" baseline of Figs. 2-6.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "baseline/hom_msse_server.hpp"
#include "baseline/msse_common.hpp"
#include "crypto/drbg.hpp"
#include "crypto/secret.hpp"
#include "crypto/paillier.hpp"
#include "index/space.hpp"
#include "index/vocab_tree.hpp"
#include "mie/keys.hpp"
#include "mie/scheme.hpp"
#include "net/transport.hpp"

namespace mie::baseline {

struct HomMsseParams {
    std::size_t tree_branch = 10;
    std::size_t tree_depth = 3;
    int kmeans_iterations = 8;
    std::size_t max_training_samples = 20000;
    std::uint64_t seed = 2017;
    std::size_t paillier_bits = 384;  ///< modulus size (toy-scale default)
    double counter_padding = 1.6;     ///< request inflation, per [10]
};

class HomMsseClient final : public SearchableScheme {
public:
    HomMsseClient(net::Transport& transport, std::string repo_id,
                  BytesView repo_entropy, Bytes user_secret,
                  const HomMsseParams& params = HomMsseParams{},
                  double device_cpu_scale = 1.0);

    std::string name() const override { return "Hom-MSSE"; }

    void create_repository() override;
    void train() override;
    void update(const sim::MultimodalObject& object) override;
    void remove(std::uint64_t object_id) override;
    std::vector<SearchResult> search(const sim::MultimodalObject& query,
                                     std::size_t top_k) override;

    sim::CostMeter& meter() override { return meter_; }

    sim::MultimodalObject decrypt_result(const SearchResult& result) const;

    bool trained() const { return trained_.has_value(); }

    HomMsseParams params;
    ExtractionParams extraction;

    /// When true (default), untrained adds upload the AES-encrypted feature
    /// blob so the cloud holds training material for other users. Single-
    /// user deployments (the paper's measured configuration) can disable
    /// this and rely on the client's O(n) plaintext-feature cache, keeping
    /// update traffic to blob + index entries.
    bool store_features_in_cloud = true;

private:
    struct TrainedState {
        index::VocabTree<index::EuclideanSpace> codebook;
    };

    std::array<features::TermHistogram, kNumModalities> modality_histograms(
        const ExtractedFeatures& features) const;

    /// Builds index entries (Paillier frequencies), advancing `counters`.
    std::array<std::vector<IndexEntry>, kNumModalities> build_entries(
        std::uint64_t doc,
        const std::array<features::TermHistogram, kNumModalities>& hists,
        std::array<CounterDict, kNumModalities>& counters);

    /// GetAndIncCtrs round-trip: returns decrypted current counters for the
    /// requested terms, incrementing each by `increment` server-side (with
    /// Enc(0) padding terms appended).
    std::array<CounterDict, kNumModalities> get_and_inc_counters(
        const std::array<std::vector<std::string>, kNumModalities>& terms,
        std::uint64_t increment);

    Bytes encrypt_with_rk1(BytesView plaintext);
    Bytes decrypt_with_rk1(BytesView sealed) const;
    Bytes encrypt_object_blob(const sim::MultimodalObject& object);

    Bytes call(BytesView request, bool synchronous);
    void write_entries(net::MessageWriter& writer,
                       const std::array<std::vector<IndexEntry>,
                                        kNumModalities>& entries) const;

    net::Transport& transport_;
    std::string repo_id_;
    crypto::SecretBytes rk1_;
    crypto::SecretBytes rk2_;
    /// Idempotency-envelope identity for mutating requests.
    std::uint64_t op_client_id_ = 0;
    std::uint64_t op_seq_ = 0;
    DataKeyring keyring_;
    sim::CostMeter meter_;
    crypto::CtrDrbg drbg_;
    crypto::Paillier paillier_;
    std::optional<TrainedState> trained_;
    std::uint64_t nonce_counter_ = 0;
    std::unordered_map<std::uint64_t, ExtractedFeatures> local_features_;
};

}  // namespace mie::baseline
