// Empirical leakage analysis for DPE encodings.
//
// §V-A observes that the impact of MIE's update-time leakage "is not yet
// fully understood" and depends on adversarial background knowledge. This
// module quantifies one concrete passive attack: an honest-but-curious
// server clustering the Dense-DPE encodings it stores (it can — encoded
// distances below t are real distances) and trying to recover the objects'
// semantic grouping. Clustering accuracy against ground-truth labels
// measures how much structure the threshold t actually reveals.
#pragma once

#include <cstdint>
#include <vector>

#include "dpe/bitcode.hpp"

namespace mie::eval {

/// Accuracy of a cluster assignment against ground-truth labels: each
/// cluster votes for its majority label, and accuracy is the fraction of
/// points whose cluster's majority label matches their own. 1.0 = labels
/// fully recovered; ~1/num_labels = chance.
double cluster_label_accuracy(const std::vector<std::uint32_t>& assignment,
                              const std::vector<std::uint32_t>& labels);

/// The attack: Hamming k-means over per-object encoding sets (each object
/// summarized by the bit-majority of its encodings), k = number of
/// distinct labels. Returns the achieved label-recovery accuracy.
double dpe_clustering_attack(
    const std::vector<std::vector<dpe::BitCode>>& object_encodings,
    const std::vector<std::uint32_t>& labels, std::uint64_t seed = 1);

}  // namespace mie::eval
