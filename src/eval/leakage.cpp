#include "eval/leakage.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "index/kmeans.hpp"
#include "index/space.hpp"

namespace mie::eval {

double cluster_label_accuracy(const std::vector<std::uint32_t>& assignment,
                              const std::vector<std::uint32_t>& labels) {
    if (assignment.size() != labels.size() || assignment.empty()) {
        throw std::invalid_argument("cluster_label_accuracy: size mismatch");
    }
    // cluster -> label -> count
    std::map<std::uint32_t, std::map<std::uint32_t, std::size_t>> votes;
    for (std::size_t i = 0; i < assignment.size(); ++i) {
        ++votes[assignment[i]][labels[i]];
    }
    std::map<std::uint32_t, std::uint32_t> majority;
    for (const auto& [cluster, counts] : votes) {
        const auto best = std::max_element(
            counts.begin(), counts.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
        majority[cluster] = best->first;
    }
    std::size_t correct = 0;
    for (std::size_t i = 0; i < assignment.size(); ++i) {
        if (majority[assignment[i]] == labels[i]) ++correct;
    }
    return static_cast<double>(correct) /
           static_cast<double>(assignment.size());
}

double dpe_clustering_attack(
    const std::vector<std::vector<dpe::BitCode>>& object_encodings,
    const std::vector<std::uint32_t>& labels, std::uint64_t seed) {
    if (object_encodings.size() != labels.size() || labels.empty()) {
        throw std::invalid_argument("dpe_clustering_attack: size mismatch");
    }
    // Summarize each object by the bit-majority of its encodings (the
    // adversary's cheapest per-object signature).
    std::vector<dpe::BitCode> signatures;
    signatures.reserve(object_encodings.size());
    for (const auto& encodings : object_encodings) {
        if (encodings.empty()) {
            throw std::invalid_argument(
                "dpe_clustering_attack: object without encodings");
        }
        std::vector<const dpe::BitCode*> members;
        members.reserve(encodings.size());
        for (const auto& code : encodings) members.push_back(&code);
        signatures.push_back(index::HammingSpace::centroid(
            std::span<const dpe::BitCode* const>(members)));
    }

    const std::set<std::uint32_t> distinct(labels.begin(), labels.end());
    const auto clusters = index::kmeans<index::HammingSpace>(
        signatures, distinct.size(), /*max_iterations=*/20, seed);
    return cluster_label_accuracy(clusters.assignment, labels);
}

}  // namespace mie::eval
