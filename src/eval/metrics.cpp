#include "eval/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace mie::eval {

double average_precision(const std::vector<std::uint64_t>& ranked,
                         const std::unordered_set<std::uint64_t>& relevant) {
    if (relevant.empty()) return 0.0;
    double hits = 0.0;
    double precision_sum = 0.0;
    for (std::size_t i = 0; i < ranked.size(); ++i) {
        if (relevant.contains(ranked[i])) {
            hits += 1.0;
            precision_sum += hits / static_cast<double>(i + 1);
        }
    }
    return precision_sum / static_cast<double>(relevant.size());
}

double mean_average_precision(
    const std::vector<std::vector<std::uint64_t>>& ranked_lists,
    const std::vector<std::unordered_set<std::uint64_t>>& relevant_sets) {
    if (ranked_lists.size() != relevant_sets.size()) {
        throw std::invalid_argument("mAP: list count mismatch");
    }
    if (ranked_lists.empty()) return 0.0;
    double total = 0.0;
    for (std::size_t i = 0; i < ranked_lists.size(); ++i) {
        total += average_precision(ranked_lists[i], relevant_sets[i]);
    }
    return total / static_cast<double>(ranked_lists.size());
}

double precision_at_k(const std::vector<std::uint64_t>& ranked,
                      const std::unordered_set<std::uint64_t>& relevant,
                      std::size_t k) {
    if (k == 0) return 0.0;
    const std::size_t limit = std::min(k, ranked.size());
    std::size_t hits = 0;
    for (std::size_t i = 0; i < limit; ++i) {
        if (relevant.contains(ranked[i])) ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(k);
}

double recall_at_k(const std::vector<std::uint64_t>& ranked,
                   const std::unordered_set<std::uint64_t>& relevant,
                   std::size_t k) {
    if (relevant.empty()) return 0.0;
    const std::size_t limit = std::min(k, ranked.size());
    std::size_t hits = 0;
    for (std::size_t i = 0; i < limit; ++i) {
        if (relevant.contains(ranked[i])) ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(relevant.size());
}

}  // namespace mie::eval
