// Retrieval-quality metrics: average precision and mean average precision,
// as used by the INRIA Holidays evaluation package the paper relies on for
// Table III.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

namespace mie::eval {

/// Average precision of one ranked list against a relevant set. The query
/// itself should be excluded from `ranked` by the caller (Holidays
/// convention). Returns 0 if `relevant` is empty.
double average_precision(const std::vector<std::uint64_t>& ranked,
                         const std::unordered_set<std::uint64_t>& relevant);

/// Mean of per-query average precisions (as a fraction in [0, 1]).
double mean_average_precision(
    const std::vector<std::vector<std::uint64_t>>& ranked_lists,
    const std::vector<std::unordered_set<std::uint64_t>>& relevant_sets);

/// Precision at k for one ranked list.
double precision_at_k(const std::vector<std::uint64_t>& ranked,
                      const std::unordered_set<std::uint64_t>& relevant,
                      std::size_t k);

/// Recall at k for one ranked list.
double recall_at_k(const std::vector<std::uint64_t>& ranked,
                   const std::unordered_set<std::uint64_t>& relevant,
                   std::size_t k);

}  // namespace mie::eval
