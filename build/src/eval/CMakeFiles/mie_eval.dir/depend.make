# Empty dependencies file for mie_eval.
# This may be replaced when dependencies are built.
