file(REMOVE_RECURSE
  "libmie_eval.a"
)
