file(REMOVE_RECURSE
  "CMakeFiles/mie_eval.dir/leakage.cpp.o"
  "CMakeFiles/mie_eval.dir/leakage.cpp.o.d"
  "CMakeFiles/mie_eval.dir/metrics.cpp.o"
  "CMakeFiles/mie_eval.dir/metrics.cpp.o.d"
  "libmie_eval.a"
  "libmie_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mie_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
