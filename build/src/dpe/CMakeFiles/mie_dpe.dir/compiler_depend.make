# Empty compiler generated dependencies file for mie_dpe.
# This may be replaced when dependencies are built.
