file(REMOVE_RECURSE
  "CMakeFiles/mie_dpe.dir/bitcode.cpp.o"
  "CMakeFiles/mie_dpe.dir/bitcode.cpp.o.d"
  "CMakeFiles/mie_dpe.dir/dense_dpe.cpp.o"
  "CMakeFiles/mie_dpe.dir/dense_dpe.cpp.o.d"
  "CMakeFiles/mie_dpe.dir/sparse_dpe.cpp.o"
  "CMakeFiles/mie_dpe.dir/sparse_dpe.cpp.o.d"
  "libmie_dpe.a"
  "libmie_dpe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mie_dpe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
