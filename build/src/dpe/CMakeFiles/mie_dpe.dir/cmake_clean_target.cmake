file(REMOVE_RECURSE
  "libmie_dpe.a"
)
