# Empty dependencies file for mie_fusion.
# This may be replaced when dependencies are built.
