file(REMOVE_RECURSE
  "libmie_fusion.a"
)
