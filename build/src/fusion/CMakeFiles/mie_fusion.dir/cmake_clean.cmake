file(REMOVE_RECURSE
  "CMakeFiles/mie_fusion.dir/rank_fusion.cpp.o"
  "CMakeFiles/mie_fusion.dir/rank_fusion.cpp.o.d"
  "libmie_fusion.a"
  "libmie_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mie_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
