file(REMOVE_RECURSE
  "CMakeFiles/mie_features.dir/audio.cpp.o"
  "CMakeFiles/mie_features.dir/audio.cpp.o.d"
  "CMakeFiles/mie_features.dir/feature.cpp.o"
  "CMakeFiles/mie_features.dir/feature.cpp.o.d"
  "CMakeFiles/mie_features.dir/image.cpp.o"
  "CMakeFiles/mie_features.dir/image.cpp.o.d"
  "CMakeFiles/mie_features.dir/surf.cpp.o"
  "CMakeFiles/mie_features.dir/surf.cpp.o.d"
  "CMakeFiles/mie_features.dir/text.cpp.o"
  "CMakeFiles/mie_features.dir/text.cpp.o.d"
  "libmie_features.a"
  "libmie_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mie_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
