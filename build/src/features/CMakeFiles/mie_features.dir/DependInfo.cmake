
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/features/audio.cpp" "src/features/CMakeFiles/mie_features.dir/audio.cpp.o" "gcc" "src/features/CMakeFiles/mie_features.dir/audio.cpp.o.d"
  "/root/repo/src/features/feature.cpp" "src/features/CMakeFiles/mie_features.dir/feature.cpp.o" "gcc" "src/features/CMakeFiles/mie_features.dir/feature.cpp.o.d"
  "/root/repo/src/features/image.cpp" "src/features/CMakeFiles/mie_features.dir/image.cpp.o" "gcc" "src/features/CMakeFiles/mie_features.dir/image.cpp.o.d"
  "/root/repo/src/features/surf.cpp" "src/features/CMakeFiles/mie_features.dir/surf.cpp.o" "gcc" "src/features/CMakeFiles/mie_features.dir/surf.cpp.o.d"
  "/root/repo/src/features/text.cpp" "src/features/CMakeFiles/mie_features.dir/text.cpp.o" "gcc" "src/features/CMakeFiles/mie_features.dir/text.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mie_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
