# Empty compiler generated dependencies file for mie_features.
# This may be replaced when dependencies are built.
