file(REMOVE_RECURSE
  "libmie_features.a"
)
