file(REMOVE_RECURSE
  "CMakeFiles/mie_baseline.dir/hom_msse_client.cpp.o"
  "CMakeFiles/mie_baseline.dir/hom_msse_client.cpp.o.d"
  "CMakeFiles/mie_baseline.dir/hom_msse_server.cpp.o"
  "CMakeFiles/mie_baseline.dir/hom_msse_server.cpp.o.d"
  "CMakeFiles/mie_baseline.dir/msse_client.cpp.o"
  "CMakeFiles/mie_baseline.dir/msse_client.cpp.o.d"
  "CMakeFiles/mie_baseline.dir/msse_common.cpp.o"
  "CMakeFiles/mie_baseline.dir/msse_common.cpp.o.d"
  "CMakeFiles/mie_baseline.dir/msse_server.cpp.o"
  "CMakeFiles/mie_baseline.dir/msse_server.cpp.o.d"
  "libmie_baseline.a"
  "libmie_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mie_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
