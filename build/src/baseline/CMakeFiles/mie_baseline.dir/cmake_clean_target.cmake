file(REMOVE_RECURSE
  "libmie_baseline.a"
)
