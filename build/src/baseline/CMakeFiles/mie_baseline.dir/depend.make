# Empty dependencies file for mie_baseline.
# This may be replaced when dependencies are built.
