file(REMOVE_RECURSE
  "CMakeFiles/mie_sim.dir/dataset.cpp.o"
  "CMakeFiles/mie_sim.dir/dataset.cpp.o.d"
  "libmie_sim.a"
  "libmie_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mie_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
