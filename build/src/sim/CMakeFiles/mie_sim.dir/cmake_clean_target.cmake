file(REMOVE_RECURSE
  "libmie_sim.a"
)
