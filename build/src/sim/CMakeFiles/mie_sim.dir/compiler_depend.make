# Empty compiler generated dependencies file for mie_sim.
# This may be replaced when dependencies are built.
