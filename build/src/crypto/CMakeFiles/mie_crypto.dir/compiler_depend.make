# Empty compiler generated dependencies file for mie_crypto.
# This may be replaced when dependencies are built.
