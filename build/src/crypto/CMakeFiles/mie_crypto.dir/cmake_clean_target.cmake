file(REMOVE_RECURSE
  "libmie_crypto.a"
)
