file(REMOVE_RECURSE
  "CMakeFiles/mie_crypto.dir/aes.cpp.o"
  "CMakeFiles/mie_crypto.dir/aes.cpp.o.d"
  "CMakeFiles/mie_crypto.dir/bignum.cpp.o"
  "CMakeFiles/mie_crypto.dir/bignum.cpp.o.d"
  "CMakeFiles/mie_crypto.dir/ctr.cpp.o"
  "CMakeFiles/mie_crypto.dir/ctr.cpp.o.d"
  "CMakeFiles/mie_crypto.dir/drbg.cpp.o"
  "CMakeFiles/mie_crypto.dir/drbg.cpp.o.d"
  "CMakeFiles/mie_crypto.dir/kdf.cpp.o"
  "CMakeFiles/mie_crypto.dir/kdf.cpp.o.d"
  "CMakeFiles/mie_crypto.dir/paillier.cpp.o"
  "CMakeFiles/mie_crypto.dir/paillier.cpp.o.d"
  "CMakeFiles/mie_crypto.dir/rsa.cpp.o"
  "CMakeFiles/mie_crypto.dir/rsa.cpp.o.d"
  "CMakeFiles/mie_crypto.dir/sha1.cpp.o"
  "CMakeFiles/mie_crypto.dir/sha1.cpp.o.d"
  "CMakeFiles/mie_crypto.dir/sha256.cpp.o"
  "CMakeFiles/mie_crypto.dir/sha256.cpp.o.d"
  "libmie_crypto.a"
  "libmie_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mie_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
