file(REMOVE_RECURSE
  "CMakeFiles/mie_net.dir/tcp.cpp.o"
  "CMakeFiles/mie_net.dir/tcp.cpp.o.d"
  "libmie_net.a"
  "libmie_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mie_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
