# Empty compiler generated dependencies file for mie_net.
# This may be replaced when dependencies are built.
