file(REMOVE_RECURSE
  "libmie_net.a"
)
