# Empty dependencies file for mie_util.
# This may be replaced when dependencies are built.
