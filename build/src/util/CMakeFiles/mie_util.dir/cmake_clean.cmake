file(REMOVE_RECURSE
  "CMakeFiles/mie_util.dir/bytes.cpp.o"
  "CMakeFiles/mie_util.dir/bytes.cpp.o.d"
  "CMakeFiles/mie_util.dir/table.cpp.o"
  "CMakeFiles/mie_util.dir/table.cpp.o.d"
  "libmie_util.a"
  "libmie_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mie_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
