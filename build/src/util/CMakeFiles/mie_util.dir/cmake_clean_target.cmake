file(REMOVE_RECURSE
  "libmie_util.a"
)
