file(REMOVE_RECURSE
  "libmie_index.a"
)
