# Empty dependencies file for mie_index.
# This may be replaced when dependencies are built.
