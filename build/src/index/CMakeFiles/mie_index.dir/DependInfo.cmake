
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/champion.cpp" "src/index/CMakeFiles/mie_index.dir/champion.cpp.o" "gcc" "src/index/CMakeFiles/mie_index.dir/champion.cpp.o.d"
  "/root/repo/src/index/inverted_index.cpp" "src/index/CMakeFiles/mie_index.dir/inverted_index.cpp.o" "gcc" "src/index/CMakeFiles/mie_index.dir/inverted_index.cpp.o.d"
  "/root/repo/src/index/scoring.cpp" "src/index/CMakeFiles/mie_index.dir/scoring.cpp.o" "gcc" "src/index/CMakeFiles/mie_index.dir/scoring.cpp.o.d"
  "/root/repo/src/index/space.cpp" "src/index/CMakeFiles/mie_index.dir/space.cpp.o" "gcc" "src/index/CMakeFiles/mie_index.dir/space.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mie_util.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/mie_features.dir/DependInfo.cmake"
  "/root/repo/build/src/dpe/CMakeFiles/mie_dpe.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/mie_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
