file(REMOVE_RECURSE
  "CMakeFiles/mie_index.dir/champion.cpp.o"
  "CMakeFiles/mie_index.dir/champion.cpp.o.d"
  "CMakeFiles/mie_index.dir/inverted_index.cpp.o"
  "CMakeFiles/mie_index.dir/inverted_index.cpp.o.d"
  "CMakeFiles/mie_index.dir/scoring.cpp.o"
  "CMakeFiles/mie_index.dir/scoring.cpp.o.d"
  "CMakeFiles/mie_index.dir/space.cpp.o"
  "CMakeFiles/mie_index.dir/space.cpp.o.d"
  "libmie_index.a"
  "libmie_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mie_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
