file(REMOVE_RECURSE
  "libmie_core.a"
)
