
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mie/client.cpp" "src/mie/CMakeFiles/mie_core.dir/client.cpp.o" "gcc" "src/mie/CMakeFiles/mie_core.dir/client.cpp.o.d"
  "/root/repo/src/mie/extract.cpp" "src/mie/CMakeFiles/mie_core.dir/extract.cpp.o" "gcc" "src/mie/CMakeFiles/mie_core.dir/extract.cpp.o.d"
  "/root/repo/src/mie/key_sharing.cpp" "src/mie/CMakeFiles/mie_core.dir/key_sharing.cpp.o" "gcc" "src/mie/CMakeFiles/mie_core.dir/key_sharing.cpp.o.d"
  "/root/repo/src/mie/keys.cpp" "src/mie/CMakeFiles/mie_core.dir/keys.cpp.o" "gcc" "src/mie/CMakeFiles/mie_core.dir/keys.cpp.o.d"
  "/root/repo/src/mie/object_codec.cpp" "src/mie/CMakeFiles/mie_core.dir/object_codec.cpp.o" "gcc" "src/mie/CMakeFiles/mie_core.dir/object_codec.cpp.o.d"
  "/root/repo/src/mie/persistence.cpp" "src/mie/CMakeFiles/mie_core.dir/persistence.cpp.o" "gcc" "src/mie/CMakeFiles/mie_core.dir/persistence.cpp.o.d"
  "/root/repo/src/mie/rotation.cpp" "src/mie/CMakeFiles/mie_core.dir/rotation.cpp.o" "gcc" "src/mie/CMakeFiles/mie_core.dir/rotation.cpp.o.d"
  "/root/repo/src/mie/server.cpp" "src/mie/CMakeFiles/mie_core.dir/server.cpp.o" "gcc" "src/mie/CMakeFiles/mie_core.dir/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mie_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/mie_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/mie_features.dir/DependInfo.cmake"
  "/root/repo/build/src/dpe/CMakeFiles/mie_dpe.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/mie_index.dir/DependInfo.cmake"
  "/root/repo/build/src/fusion/CMakeFiles/mie_fusion.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mie_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mie_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
