file(REMOVE_RECURSE
  "CMakeFiles/mie_core.dir/client.cpp.o"
  "CMakeFiles/mie_core.dir/client.cpp.o.d"
  "CMakeFiles/mie_core.dir/extract.cpp.o"
  "CMakeFiles/mie_core.dir/extract.cpp.o.d"
  "CMakeFiles/mie_core.dir/key_sharing.cpp.o"
  "CMakeFiles/mie_core.dir/key_sharing.cpp.o.d"
  "CMakeFiles/mie_core.dir/keys.cpp.o"
  "CMakeFiles/mie_core.dir/keys.cpp.o.d"
  "CMakeFiles/mie_core.dir/object_codec.cpp.o"
  "CMakeFiles/mie_core.dir/object_codec.cpp.o.d"
  "CMakeFiles/mie_core.dir/persistence.cpp.o"
  "CMakeFiles/mie_core.dir/persistence.cpp.o.d"
  "CMakeFiles/mie_core.dir/rotation.cpp.o"
  "CMakeFiles/mie_core.dir/rotation.cpp.o.d"
  "CMakeFiles/mie_core.dir/server.cpp.o"
  "CMakeFiles/mie_core.dir/server.cpp.o.d"
  "libmie_core.a"
  "libmie_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mie_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
