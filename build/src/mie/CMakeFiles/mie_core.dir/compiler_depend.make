# Empty compiler generated dependencies file for mie_core.
# This may be replaced when dependencies are built.
