# Empty dependencies file for voice_tagged_photos.
# This may be replaced when dependencies are built.
