file(REMOVE_RECURSE
  "CMakeFiles/voice_tagged_photos.dir/voice_tagged_photos.cpp.o"
  "CMakeFiles/voice_tagged_photos.dir/voice_tagged_photos.cpp.o.d"
  "voice_tagged_photos"
  "voice_tagged_photos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voice_tagged_photos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
