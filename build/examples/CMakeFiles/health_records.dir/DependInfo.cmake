
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/health_records.cpp" "examples/CMakeFiles/health_records.dir/health_records.cpp.o" "gcc" "examples/CMakeFiles/health_records.dir/health_records.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mie/CMakeFiles/mie_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/mie_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/fusion/CMakeFiles/mie_fusion.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/mie_index.dir/DependInfo.cmake"
  "/root/repo/build/src/dpe/CMakeFiles/mie_dpe.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/mie_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mie_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/mie_features.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mie_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mie_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
