file(REMOVE_RECURSE
  "CMakeFiles/mie_console.dir/mie_console.cpp.o"
  "CMakeFiles/mie_console.dir/mie_console.cpp.o.d"
  "mie_console"
  "mie_console.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mie_console.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
