# Empty dependencies file for mie_console.
# This may be replaced when dependencies are built.
