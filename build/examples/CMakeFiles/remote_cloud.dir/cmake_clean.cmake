file(REMOVE_RECURSE
  "CMakeFiles/remote_cloud.dir/remote_cloud.cpp.o"
  "CMakeFiles/remote_cloud.dir/remote_cloud.cpp.o.d"
  "remote_cloud"
  "remote_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
