# Empty compiler generated dependencies file for remote_cloud.
# This may be replaced when dependencies are built.
