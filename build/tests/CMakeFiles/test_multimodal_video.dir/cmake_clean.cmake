file(REMOVE_RECURSE
  "CMakeFiles/test_multimodal_video.dir/mie/test_multimodal_video.cpp.o"
  "CMakeFiles/test_multimodal_video.dir/mie/test_multimodal_video.cpp.o.d"
  "test_multimodal_video"
  "test_multimodal_video.pdb"
  "test_multimodal_video[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multimodal_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
