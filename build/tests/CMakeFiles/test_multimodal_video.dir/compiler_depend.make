# Empty compiler generated dependencies file for test_multimodal_video.
# This may be replaced when dependencies are built.
