file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_dpe.dir/dpe/test_sparse_dpe.cpp.o"
  "CMakeFiles/test_sparse_dpe.dir/dpe/test_sparse_dpe.cpp.o.d"
  "test_sparse_dpe"
  "test_sparse_dpe.pdb"
  "test_sparse_dpe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_dpe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
