# Empty dependencies file for test_sparse_dpe.
# This may be replaced when dependencies are built.
