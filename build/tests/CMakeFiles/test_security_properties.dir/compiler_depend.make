# Empty compiler generated dependencies file for test_security_properties.
# This may be replaced when dependencies are built.
