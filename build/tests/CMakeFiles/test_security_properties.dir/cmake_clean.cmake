file(REMOVE_RECURSE
  "CMakeFiles/test_security_properties.dir/mie/test_security_properties.cpp.o"
  "CMakeFiles/test_security_properties.dir/mie/test_security_properties.cpp.o.d"
  "test_security_properties"
  "test_security_properties.pdb"
  "test_security_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_security_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
