file(REMOVE_RECURSE
  "CMakeFiles/test_hom_msse.dir/baseline/test_hom_msse.cpp.o"
  "CMakeFiles/test_hom_msse.dir/baseline/test_hom_msse.cpp.o.d"
  "test_hom_msse"
  "test_hom_msse.pdb"
  "test_hom_msse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hom_msse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
