# Empty compiler generated dependencies file for test_hom_msse.
# This may be replaced when dependencies are built.
