file(REMOVE_RECURSE
  "CMakeFiles/test_msse.dir/baseline/test_msse.cpp.o"
  "CMakeFiles/test_msse.dir/baseline/test_msse.cpp.o.d"
  "test_msse"
  "test_msse.pdb"
  "test_msse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_msse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
