# Empty dependencies file for test_msse.
# This may be replaced when dependencies are built.
