file(REMOVE_RECURSE
  "CMakeFiles/test_dense_dpe.dir/dpe/test_dense_dpe.cpp.o"
  "CMakeFiles/test_dense_dpe.dir/dpe/test_dense_dpe.cpp.o.d"
  "test_dense_dpe"
  "test_dense_dpe.pdb"
  "test_dense_dpe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dense_dpe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
