# Empty dependencies file for test_dense_dpe.
# This may be replaced when dependencies are built.
