file(REMOVE_RECURSE
  "CMakeFiles/test_multimodal_audio.dir/mie/test_multimodal_audio.cpp.o"
  "CMakeFiles/test_multimodal_audio.dir/mie/test_multimodal_audio.cpp.o.d"
  "test_multimodal_audio"
  "test_multimodal_audio.pdb"
  "test_multimodal_audio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multimodal_audio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
