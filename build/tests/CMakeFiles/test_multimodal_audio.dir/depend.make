# Empty dependencies file for test_multimodal_audio.
# This may be replaced when dependencies are built.
