file(REMOVE_RECURSE
  "CMakeFiles/test_mie_end_to_end.dir/mie/test_mie_end_to_end.cpp.o"
  "CMakeFiles/test_mie_end_to_end.dir/mie/test_mie_end_to_end.cpp.o.d"
  "test_mie_end_to_end"
  "test_mie_end_to_end.pdb"
  "test_mie_end_to_end[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mie_end_to_end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
