# Empty compiler generated dependencies file for test_mie_end_to_end.
# This may be replaced when dependencies are built.
