file(REMOVE_RECURSE
  "CMakeFiles/test_paillier.dir/crypto/test_paillier.cpp.o"
  "CMakeFiles/test_paillier.dir/crypto/test_paillier.cpp.o.d"
  "test_paillier"
  "test_paillier.pdb"
  "test_paillier[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paillier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
