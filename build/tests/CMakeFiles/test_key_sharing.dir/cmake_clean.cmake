file(REMOVE_RECURSE
  "CMakeFiles/test_key_sharing.dir/mie/test_key_sharing.cpp.o"
  "CMakeFiles/test_key_sharing.dir/mie/test_key_sharing.cpp.o.d"
  "test_key_sharing"
  "test_key_sharing.pdb"
  "test_key_sharing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_key_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
