# Empty dependencies file for test_key_sharing.
# This may be replaced when dependencies are built.
