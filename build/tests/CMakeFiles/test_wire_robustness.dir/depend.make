# Empty dependencies file for test_wire_robustness.
# This may be replaced when dependencies are built.
