file(REMOVE_RECURSE
  "CMakeFiles/test_wire_robustness.dir/net/test_wire_robustness.cpp.o"
  "CMakeFiles/test_wire_robustness.dir/net/test_wire_robustness.cpp.o.d"
  "test_wire_robustness"
  "test_wire_robustness.pdb"
  "test_wire_robustness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wire_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
