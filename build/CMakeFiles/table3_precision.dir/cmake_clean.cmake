file(REMOVE_RECURSE
  "CMakeFiles/table3_precision.dir/bench/table3_precision.cpp.o"
  "CMakeFiles/table3_precision.dir/bench/table3_precision.cpp.o.d"
  "bench/table3_precision"
  "bench/table3_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
