file(REMOVE_RECURSE
  "CMakeFiles/fig2_update_mobile.dir/bench/fig2_update_mobile.cpp.o"
  "CMakeFiles/fig2_update_mobile.dir/bench/fig2_update_mobile.cpp.o.d"
  "bench/fig2_update_mobile"
  "bench/fig2_update_mobile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_update_mobile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
