# Empty dependencies file for fig2_update_mobile.
# This may be replaced when dependencies are built.
