file(REMOVE_RECURSE
  "CMakeFiles/fig6_energy.dir/bench/fig6_energy.cpp.o"
  "CMakeFiles/fig6_energy.dir/bench/fig6_energy.cpp.o.d"
  "bench/fig6_energy"
  "bench/fig6_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
