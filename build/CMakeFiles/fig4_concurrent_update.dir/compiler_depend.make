# Empty compiler generated dependencies file for fig4_concurrent_update.
# This may be replaced when dependencies are built.
