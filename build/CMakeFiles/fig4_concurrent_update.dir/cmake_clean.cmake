file(REMOVE_RECURSE
  "CMakeFiles/fig4_concurrent_update.dir/bench/fig4_concurrent_update.cpp.o"
  "CMakeFiles/fig4_concurrent_update.dir/bench/fig4_concurrent_update.cpp.o.d"
  "bench/fig4_concurrent_update"
  "bench/fig4_concurrent_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_concurrent_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
