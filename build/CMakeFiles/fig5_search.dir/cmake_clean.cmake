file(REMOVE_RECURSE
  "CMakeFiles/fig5_search.dir/bench/fig5_search.cpp.o"
  "CMakeFiles/fig5_search.dir/bench/fig5_search.cpp.o.d"
  "bench/fig5_search"
  "bench/fig5_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
