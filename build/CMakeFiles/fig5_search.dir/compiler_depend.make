# Empty compiler generated dependencies file for fig5_search.
# This may be replaced when dependencies are built.
