# Empty dependencies file for table2_dpe_distances.
# This may be replaced when dependencies are built.
