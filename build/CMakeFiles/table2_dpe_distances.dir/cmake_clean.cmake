file(REMOVE_RECURSE
  "CMakeFiles/table2_dpe_distances.dir/bench/table2_dpe_distances.cpp.o"
  "CMakeFiles/table2_dpe_distances.dir/bench/table2_dpe_distances.cpp.o.d"
  "bench/table2_dpe_distances"
  "bench/table2_dpe_distances.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_dpe_distances.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
