# Empty compiler generated dependencies file for ablation_dpe.
# This may be replaced when dependencies are built.
