file(REMOVE_RECURSE
  "CMakeFiles/ablation_dpe.dir/bench/ablation_dpe.cpp.o"
  "CMakeFiles/ablation_dpe.dir/bench/ablation_dpe.cpp.o.d"
  "bench/ablation_dpe"
  "bench/ablation_dpe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dpe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
