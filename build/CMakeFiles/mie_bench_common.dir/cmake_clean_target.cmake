file(REMOVE_RECURSE
  "lib/libmie_bench_common.a"
)
