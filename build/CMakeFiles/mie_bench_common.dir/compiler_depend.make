# Empty compiler generated dependencies file for mie_bench_common.
# This may be replaced when dependencies are built.
