file(REMOVE_RECURSE
  "CMakeFiles/mie_bench_common.dir/bench/common.cpp.o"
  "CMakeFiles/mie_bench_common.dir/bench/common.cpp.o.d"
  "lib/libmie_bench_common.a"
  "lib/libmie_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mie_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
