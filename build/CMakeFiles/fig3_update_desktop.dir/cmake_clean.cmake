file(REMOVE_RECURSE
  "CMakeFiles/fig3_update_desktop.dir/bench/fig3_update_desktop.cpp.o"
  "CMakeFiles/fig3_update_desktop.dir/bench/fig3_update_desktop.cpp.o.d"
  "bench/fig3_update_desktop"
  "bench/fig3_update_desktop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_update_desktop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
