# Empty compiler generated dependencies file for fig3_update_desktop.
# This may be replaced when dependencies are built.
