#include "engine.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace mielint {

namespace {

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("mielint: cannot read " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out.push_back(c);
                }
        }
    }
    return out;
}

}  // namespace

std::string display_path(const std::string& path, const std::string& root) {
    namespace fs = std::filesystem;
    std::error_code ec;
    const fs::path abs = fs::weakly_canonical(fs::path(path), ec);
    const fs::path abs_root = fs::weakly_canonical(fs::path(root), ec);
    const fs::path rel = abs.lexically_relative(abs_root);
    if (rel.empty() || rel.native().rfind("..", 0) == 0) {
        return abs.generic_string();
    }
    return rel.generic_string();
}

std::vector<Finding> lint_paths(const std::vector<std::string>& paths,
                                const std::string& root,
                                const Config& config) {
    // Dedup on display path (a file can arrive via both compile_commands
    // and a --headers-under sweep), keep deterministic order.
    std::set<std::string> seen;
    std::vector<LexedFile> files;
    for (const std::string& path : paths) {
        std::string display = display_path(path, root);
        if (!seen.insert(display).second) continue;
        files.push_back(lex(path, std::move(display), read_file(path)));
    }
    std::sort(files.begin(), files.end(),
              [](const LexedFile& a, const LexedFile& b) {
                  return a.display < b.display;
              });
    return run_rules(files, config);
}

std::vector<std::string> files_from_compile_commands(
    const std::string& json_path) {
    const std::string text = read_file(json_path);
    std::vector<std::string> files;
    std::size_t pos = 0;
    while ((pos = text.find("\"file\"", pos)) != std::string::npos) {
        pos += 6;
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' || text[pos] == ':' ||
                text[pos] == '\n')) {
            ++pos;
        }
        if (pos >= text.size() || text[pos] != '"') continue;
        ++pos;
        std::string value;
        while (pos < text.size() && text[pos] != '"') {
            if (text[pos] == '\\' && pos + 1 < text.size()) ++pos;
            value.push_back(text[pos++]);
        }
        files.push_back(std::move(value));
    }
    return files;
}

std::vector<std::string> headers_under(const std::string& dir) {
    namespace fs = std::filesystem;
    std::vector<std::string> out;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
        if (!entry.is_regular_file()) continue;
        const std::string ext = entry.path().extension().string();
        if (ext == ".hpp" || ext == ".h") {
            out.push_back(entry.path().string());
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<std::string> sources_under(const std::string& dir) {
    namespace fs = std::filesystem;
    std::vector<std::string> out;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
        if (!entry.is_regular_file()) continue;
        const std::string ext = entry.path().extension().string();
        if (ext == ".cpp" || ext == ".cc") {
            out.push_back(entry.path().string());
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::string to_json(const std::vector<Finding>& findings,
                    std::size_t files_scanned) {
    std::ostringstream out;
    out << "{\n"
        << "  \"schema_version\": 1,\n"
        << "  \"tool\": \"mielint\",\n"
        << "  \"files_scanned\": " << files_scanned << ",\n"
        << "  \"findings\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding& f = findings[i];
        out << (i == 0 ? "\n" : ",\n")
            << "    {\"rule\": \"" << json_escape(f.rule) << "\", "
            << "\"file\": \"" << json_escape(f.file) << "\", "
            << "\"line\": " << f.line << ", "
            << "\"message\": \"" << json_escape(f.message) << "\"}";
    }
    out << (findings.empty() ? "]" : "\n  ]") << ",\n"
        << "  \"total\": " << findings.size() << "\n"
        << "}\n";
    return out.str();
}

std::string to_sarif(const std::vector<Finding>& findings) {
    std::ostringstream out;
    out << "{\n"
        << "  \"$schema\": "
           "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
        << "  \"version\": \"2.1.0\",\n"
        << "  \"runs\": [\n"
        << "    {\n"
        << "      \"tool\": {\n"
        << "        \"driver\": {\n"
        << "          \"name\": \"mielint\",\n"
        << "          \"informationUri\": "
           "\"tools/mielint/rules.hpp\",\n"
        << "          \"rules\": [";
    const auto& catalog = rule_catalog();
    for (std::size_t i = 0; i < catalog.size(); ++i) {
        out << (i == 0 ? "\n" : ",\n")
            << "            {\"id\": \"" << json_escape(catalog[i].id)
            << "\", \"shortDescription\": {\"text\": \""
            << json_escape(catalog[i].title) << "\"}}";
    }
    out << (catalog.empty() ? "]" : "\n          ]") << "\n"
        << "        }\n"
        << "      },\n"
        << "      \"results\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding& f = findings[i];
        out << (i == 0 ? "\n" : ",\n")
            << "        {\n"
            << "          \"ruleId\": \"" << json_escape(f.rule) << "\",\n"
            << "          \"level\": \"error\",\n"
            << "          \"message\": {\"text\": \""
            << json_escape(f.message) << "\"},\n"
            << "          \"locations\": [\n"
            << "            {\n"
            << "              \"physicalLocation\": {\n"
            << "                \"artifactLocation\": {\"uri\": \""
            << json_escape(f.file) << "\"},\n"
            << "                \"region\": {\"startLine\": " << f.line
            << "}\n"
            << "              }\n"
            << "            }\n"
            << "          ]\n"
            << "        }";
    }
    out << (findings.empty() ? "]" : "\n      ]") << "\n"
        << "    }\n"
        << "  ]\n"
        << "}\n";
    return out.str();
}

std::string to_human(const std::vector<Finding>& findings,
                     std::size_t files_scanned) {
    std::ostringstream out;
    for (const Finding& f : findings) {
        out << f.file << ":" << f.line << ": " << f.rule << ": "
            << f.message << "\n";
    }
    out << "mielint: " << findings.size() << " finding"
        << (findings.size() == 1 ? "" : "s") << " in " << files_scanned
        << " files\n";
    return out.str();
}

}  // namespace mielint
