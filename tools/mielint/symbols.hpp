// Whole-project symbol table for mielint's semantic rules (R6-R8).
//
// The lexical rules (R1-R5) look at one token window at a time; the
// semantic rules need to know *which function* a token belongs to, which
// class declared a member, where locks are acquired and how far their
// RAII scopes extend, and which annotations a function or member
// carries. build_symbols() recovers all of that from the token streams
// with a scope-tracking scan — no AST, no compiler — which keeps the
// tool dependency-free at the cost of documented approximations
// (DESIGN.md §16): overloads merge into one symbol, lambda bodies are
// detached from their enclosing function (they run on whatever thread
// invokes them, which the lexical view cannot know), and types are
// resolved only through declared data members.
//
// Annotation grammar (comments, same line as the declaration or the
// line above it):
//
//   // mielint: nonblocking            function must never reach a
//                                      blocking operation (R6 root)
//   // mielint: acquires(mu_)          function body runs with mu_ held
//                                      (the *_locked helper convention)
//   // mielint: guarded_by(mu_)        member may only be touched while
//                                      mu_ is held (R8)
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace mielint {

/// One RAII lock acquisition (std::scoped_lock / lock_guard /
/// unique_lock / shared_lock) inside a function body. The scope runs
/// from the declaration to the closing brace of the enclosing block —
/// the lexical over-approximation of where the lock is held.
struct LockSite {
    std::string mutex_expr;   ///< last identifier of the mutex argument
    /// First identifier of the argument when the mutex is reached through
    /// a member-access chain (`queues_[i]->mutex` -> "queues_"); empty
    /// when the argument is a plain name. Lets semantic.cpp type the
    /// owning object instead of merging on the bare member name.
    std::string receiver;
    int line = 0;
    std::size_t token = 0;       ///< index of the lock-class token
    std::size_t scope_end = 0;   ///< one past the enclosing block's '}'
    bool try_lock = false;       ///< std::try_to_lock: cannot deadlock
};

/// An unresolved call site inside a function body: an identifier
/// followed by '('. callgraph.cpp resolves these against the include
/// closure; names that resolve to nothing (std:: calls, casts, local
/// constructors) are simply dropped.
struct RawCall {
    std::string name;       ///< callee identifier
    std::string qualifier;  ///< "X" for `X::name(...)`, else ""
    std::string receiver;   ///< "obj" for `obj.name(...)` / `obj->name(...)`
    /// Full member-access chain, outermost first: `state_->cv.wait(...)`
    /// yields {"state_", "cv"}. Empty when the receiver is not a plain
    /// identifier chain (subscripts, chained call results).
    std::vector<std::string> chain;
    bool via_this = false;  ///< `this->name(...)`
    bool global_ns = false;  ///< `::name(...)` — a raw libc/syscall
    bool is_member_call = false;  ///< preceded by '.' or '->'
    int line = 0;
    std::size_t token = 0;
};

/// A function definition (free function, method, ctor/dtor). Overloads
/// share a qualified name and become separate FunctionDef entries that
/// the call graph merges into one node.
struct FunctionDef {
    std::string qualified;   ///< "Class::name" or bare "name"
    std::string class_name;  ///< "" for free functions
    std::string name;
    std::size_t file = 0;  ///< index into the lexed-file vector
    int line = 0;          ///< first line of the signature
    std::size_t body_begin = 0;  ///< token index just after '{'
    std::size_t body_end = 0;    ///< token index of the closing '}'
    bool is_ctor_or_dtor = false;
    bool nonblocking = false;
    std::vector<std::string> acquires;  ///< raw names from acquires(...)
    /// parameter name -> type head (`void drain(State& state)` yields
    /// {"state", "State"}), for typing lock receivers and call chains.
    std::map<std::string, std::string> param_types;
    std::vector<LockSite> locks;
    std::vector<RawCall> calls;
};

/// A data-member declaration inside a class body.
struct MemberDecl {
    std::string class_name;
    std::string name;
    std::string type_head;  ///< e.g. "DurableServer", "mutex", "map"
    std::size_t file = 0;
    int line = 0;
    bool is_mutex = false;      ///< std::mutex / shared_mutex / ...
    std::string guarded_by;     ///< raw mutex name, "" when unannotated
};

struct SymbolTable {
    std::vector<FunctionDef> functions;
    std::vector<MemberDecl> members;

    /// class -> method names (declarations inside the class body plus
    /// out-of-line qualified definitions).
    std::map<std::string, std::set<std::string>> class_methods;
    /// class -> files where the class body was seen (include-closure
    /// visibility gating happens against this).
    std::map<std::string, std::set<std::size_t>> class_files;
    /// (class, member) -> type head, for receiver resolution.
    std::map<std::pair<std::string, std::string>, std::string> member_types;
    /// class -> mutex-typed member names.
    std::map<std::string, std::set<std::string>> class_mutexes;

    /// Lambda body token ranges per file, sorted by begin. Tokens inside
    /// them belong to no named function and are skipped by every
    /// semantic rule.
    std::vector<std::vector<std::pair<std::size_t, std::size_t>>> lambdas;

    bool in_lambda(std::size_t file, std::size_t token) const;
};

SymbolTable build_symbols(const std::vector<LexedFile>& files);

}  // namespace mielint
