// mielint — project-invariant linter for the MIE codebase.
//
// Usage:
//   mielint [--compile-commands PATH] [--headers-under DIR]...
//           [--sources-under DIR]... [--config PATH] [--root DIR]
//           [--only PREFIX] [--json] [--sarif PATH]
//           [--list-rules] [FILE]...
//
// Exit codes: 0 = clean, 1 = findings, 2 = usage/IO error.
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "config.hpp"
#include "engine.hpp"
#include "rules.hpp"

namespace {

void usage(std::ostream& out) {
    out << "usage: mielint [options] [FILE]...\n"
           "  --compile-commands PATH  lint every \"file\" entry of a CMake\n"
           "                           compile_commands.json\n"
           "  --headers-under DIR      also lint all .hpp/.h under DIR\n"
           "                           (repeatable)\n"
           "  --sources-under DIR      also lint all .cpp/.cc under DIR\n"
           "                           (repeatable)\n"
           "  --config PATH            mielint.conf with allow/type "
           "directives\n"
           "  --root DIR               report paths relative to DIR\n"
           "  --only PREFIX            keep findings whose display path\n"
           "                           starts with PREFIX (repeatable)\n"
           "  --json                   machine-readable report\n"
           "  --sarif PATH             also write a SARIF 2.1.0 report\n"
           "  --list-rules             print the rule catalogue and exit\n";
}

}  // namespace

int main(int argc, char** argv) {
    std::vector<std::string> paths;
    std::vector<std::string> only_prefixes;
    std::string config_path;
    std::string sarif_path;
    std::string root = ".";
    bool json = false;

    auto need_value = [&](int& i, const char* flag) -> const char* {
        if (i + 1 >= argc) {
            std::cerr << "mielint: " << flag << " needs a value\n";
            std::exit(2);
        }
        return argv[++i];
    };

    std::vector<std::string> compile_commands;
    std::vector<std::string> header_dirs;
    std::vector<std::string> source_dirs;
    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
            usage(std::cout);
            return 0;
        } else if (std::strcmp(arg, "--list-rules") == 0) {
            for (const mielint::RuleInfo& rule : mielint::rule_catalog()) {
                std::cout << rule.id << "  " << rule.title << "\n";
            }
            return 0;
        } else if (std::strcmp(arg, "--compile-commands") == 0) {
            compile_commands.push_back(need_value(i, arg));
        } else if (std::strcmp(arg, "--headers-under") == 0) {
            header_dirs.push_back(need_value(i, arg));
        } else if (std::strcmp(arg, "--sources-under") == 0) {
            source_dirs.push_back(need_value(i, arg));
        } else if (std::strcmp(arg, "--config") == 0) {
            config_path = need_value(i, arg);
        } else if (std::strcmp(arg, "--root") == 0) {
            root = need_value(i, arg);
        } else if (std::strcmp(arg, "--only") == 0) {
            only_prefixes.push_back(need_value(i, arg));
        } else if (std::strcmp(arg, "--json") == 0) {
            json = true;
        } else if (std::strcmp(arg, "--sarif") == 0) {
            sarif_path = need_value(i, arg);
        } else if (arg[0] == '-' && arg[1] != '\0') {
            std::cerr << "mielint: unknown option " << arg << "\n";
            usage(std::cerr);
            return 2;
        } else {
            paths.push_back(arg);
        }
    }

    try {
        mielint::Config config;
        if (!config_path.empty()) {
            config = mielint::Config::load(config_path);
        }
        for (const std::string& cc : compile_commands) {
            for (std::string& file : mielint::files_from_compile_commands(cc)) {
                paths.push_back(std::move(file));
            }
        }
        for (const std::string& dir : header_dirs) {
            for (std::string& header : mielint::headers_under(dir)) {
                paths.push_back(std::move(header));
            }
        }
        for (const std::string& dir : source_dirs) {
            for (std::string& source : mielint::sources_under(dir)) {
                paths.push_back(std::move(source));
            }
        }
        if (paths.empty()) {
            std::cerr << "mielint: no input files\n";
            usage(std::cerr);
            return 2;
        }

        // De-dup of repeated paths happens inside lint_paths; count scanned
        // files the same way it does (unique display paths).
        std::vector<mielint::Finding> findings =
            mielint::lint_paths(paths, root, config);
        std::size_t files_scanned = 0;
        {
            std::vector<std::string> displays;
            displays.reserve(paths.size());
            for (const std::string& path : paths) {
                displays.push_back(mielint::display_path(path, root));
            }
            std::sort(displays.begin(), displays.end());
            displays.erase(std::unique(displays.begin(), displays.end()),
                           displays.end());
            files_scanned = displays.size();
        }

        if (!only_prefixes.empty()) {
            std::vector<mielint::Finding> kept;
            for (mielint::Finding& f : findings) {
                for (const std::string& prefix : only_prefixes) {
                    if (f.file.rfind(prefix, 0) == 0) {
                        kept.push_back(std::move(f));
                        break;
                    }
                }
            }
            findings = std::move(kept);
        }

        if (!sarif_path.empty()) {
            std::ofstream out(sarif_path, std::ios::binary);
            if (!out) {
                std::cerr << "mielint: cannot write " << sarif_path << "\n";
                return 2;
            }
            out << mielint::to_sarif(findings);
        }

        std::cout << (json ? mielint::to_json(findings, files_scanned)
                           : mielint::to_human(findings, files_scanned));
        return findings.empty() ? 0 : 1;
    } catch (const std::exception& e) {
        std::cerr << "mielint: error: " << e.what() << "\n";
        return 2;
    }
}
