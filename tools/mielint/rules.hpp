// The mielint rule set.
//
// Five lexical invariants, each mechanical enough to check from tokens:
//
//   R1  banned nondeterminism: rand/srand, std::random_device, the <random>
//       engines, system_clock, time(nullptr). Fresh entropy enters through
//       crypto/entropy.hpp (allowlisted in mielint.conf) and nothing else —
//       the repo's reproducibility tests depend on it.
//   R2  secrets compared with memcmp or ==/!= on MAC/tag/digest-named
//       buffers; use util::ct_equal (data-independent running time).
//   R3  range-for over a std::unordered_map/unordered_set: hash order is
//       implementation- and run-dependent, so it must never reach wire
//       bytes, snapshots, or on-disk logs. Order-insensitive loops carry
//       an inline `// mielint: allow(R3): reason`.
//   R4  header hygiene: every .hpp has `#pragma once` and no
//       `using namespace` at header scope.
//   R5  key material lives in zeroizing storage: aggregate members with
//       secret-suggesting names (key/seed/secret/master/rk1/...) must be
//       SecretBytes/Zeroizing<...> (the config's secret-safe-type set),
//       and BigUint members of *Private*/*Secret* aggregates must be
//       SecretBigUint unless listed public (n, e, n_squared).
//
// Plus three semantic rules over the whole-project symbol table and call
// graph (see semantic.hpp for their full contracts):
//
//   R6  no blocking operation reachable from `// mielint: nonblocking`
//   R7  global lock-order graph must be acyclic (deadlock freedom)
//   R8  `// mielint: guarded_by(mu)` members only touched holding mu
//
// Adding a rule: implement a `void rule_rX(...)` in rules.cpp (lexical)
// or semantic.cpp (call-graph based), append it to run_rules() /
// run_semantic_rules() and to rule_catalog(), and add a fixture under
// tests/lint/fixtures/ exercising exactly that rule.
#pragma once

#include <string>
#include <vector>

#include "config.hpp"
#include "lexer.hpp"

namespace mielint {

struct Finding {
    std::string rule;
    std::string file;  // display path
    int line = 0;
    std::string message;
};

struct RuleInfo {
    std::string id;
    std::string title;
};

const std::vector<RuleInfo>& rule_catalog();

/// Runs every rule over `files`, honoring config path allowlists and
/// inline allow-comments. Findings come back sorted by (file, line, rule)
/// so output is stable across runs.
std::vector<Finding> run_rules(const std::vector<LexedFile>& files,
                               const Config& config);

}  // namespace mielint
