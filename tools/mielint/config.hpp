// mielint configuration: per-path rule allowlists and the R5 type policy.
//
// The config file is line-oriented; `#` starts a comment. Directives:
//
//   allow <rule-id> <path-glob>     suppress a rule under matching paths
//   secret-safe-type <name>         type accepted as secret storage (R5)
//   public-biguint-member <name>    BigUint member public by design inside
//                                   *Private*/*Secret* aggregates (R5)
//   blocking-call <name>            extra call name treated as a blocking
//                                   operation by R6 (extends the built-in
//                                   fsync/poll/sleep_for/... set)
//
// Globs match repo-relative paths: `*` and `?` stop at '/', `**` crosses
// directories. Finer-grained, one-off exceptions belong in the code as
// `// mielint: allow(Rn): reason` comments, not here — the config is for
// policy (e.g. "the entropy shim may use std::random_device"), the inline
// form is for local judgment calls that a reviewer should see in context.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace mielint {

/// `*`/`?` match within one path segment, `**` matches across segments.
bool glob_match(const std::string& pattern, const std::string& path);

struct Config {
    /// rule id -> path globs where the rule is suppressed.
    std::map<std::string, std::vector<std::string>> path_allows;
    std::set<std::string> secret_safe_types;
    std::set<std::string> public_biguint_members;
    std::set<std::string> blocking_calls;

    /// Parses the directive format above; throws std::runtime_error with
    /// file:line context on malformed input.
    static Config parse(const std::string& text,
                        const std::string& origin = "<config>");
    static Config load(const std::string& path);

    bool path_allowed(const std::string& rule,
                      const std::string& display_path) const;
};

}  // namespace mielint
