#include "symbols.hpp"

#include <algorithm>
#include <array>
#include <cstddef>
#include <utility>

namespace mielint {

namespace {

const std::set<std::string>& control_keywords() {
    static const std::set<std::string> kSet = {
        "if",     "for",    "while",  "switch",        "catch",
        "return", "sizeof", "alignof", "static_assert", "decltype",
        "new",    "delete", "throw",  "do",            "else",
        "case",   "default"};
    return kSet;
}

/// Qualifier-ish tokens skipped when extracting a declaration's type head.
const std::set<std::string>& type_qualifiers() {
    static const std::set<std::string> kSet = {
        "const",  "constexpr", "static",   "inline", "mutable",
        "volatile", "typename", "explicit", "virtual", "friend",
        "unsigned", "signed",   "long",     "short",  "extern",
        "register", "thread_local"};
    return kSet;
}

const std::set<std::string>& mutex_types() {
    static const std::set<std::string> kSet = {
        "mutex",       "shared_mutex",       "recursive_mutex",
        "timed_mutex", "recursive_timed_mutex", "shared_timed_mutex"};
    return kSet;
}

const std::set<std::string>& lock_classes() {
    static const std::set<std::string> kSet = {"scoped_lock", "lock_guard",
                                               "unique_lock", "shared_lock"};
    return kSet;
}

/// Tokens that may legally sit between a parameter list's ')' and the
/// body '{' of a function definition (const, noexcept(...), trailing
/// return types, ref-qualifiers, override/final).
bool signature_suffix_token(const Token& tok) {
    if (tok.is_identifier) return true;  // override, final, noexcept, types
    static const std::set<std::string> kSet = {"::", "->", "<", ">", "*",
                                               "&",  "&&", ",",  "(", ")",
                                               "[",  "]"};
    return kSet.count(tok.text) > 0;
}

struct Pending {
    std::string name;  ///< unqualified function name
    std::string qualifier;  ///< "Class" of an out-of-line "Class::name"
    bool is_dtor = false;
    std::size_t decl_start = 0;  ///< first token of the declaration
};

class FileScan {
  public:
    FileScan(const LexedFile& file, std::size_t index, SymbolTable& out)
        : f_(file), file_(index), out_(out), t_(file.tokens) {}

    void run() {
        if (!match_braces()) return;  // unbalanced: skip this file
        scan_region(0, t_.size(), /*class_name=*/"", /*at_class=*/false);
    }

  private:
    const LexedFile& f_;
    std::size_t file_;
    SymbolTable& out_;
    const std::vector<Token>& t_;
    std::map<std::size_t, std::size_t> brace_match_;  // '{' index -> '}'

    bool match_braces() {
        std::vector<std::size_t> open;
        for (std::size_t i = 0; i < t_.size(); ++i) {
            if (t_[i].text == "{") {
                open.push_back(i);
            } else if (t_[i].text == "}") {
                if (open.empty()) return false;
                brace_match_[open.back()] = i;
                open.pop_back();
            }
        }
        return open.empty();
    }

    bool is(std::size_t i, const char* text) const {
        return i < t_.size() && t_[i].text == text;
    }

    /// Annotations written on `line` or the line above it.
    std::vector<Annotation> annotations_for(int line) const {
        std::vector<Annotation> result;
        for (const int l : {line - 1, line}) {
            const auto it = f_.annotations.find(l);
            if (it == f_.annotations.end()) continue;
            result.insert(result.end(), it->second.begin(), it->second.end());
        }
        return result;
    }

    /// Skips a balanced `<...>` template section starting at `i` (which
    /// must point at '<'). Angles are only counted at paren depth 0.
    std::size_t skip_angles(std::size_t i) const {
        int angle = 0;
        int paren = 0;
        for (; i < t_.size(); ++i) {
            const std::string& s = t_[i].text;
            if (s == "(") {
                ++paren;
            } else if (s == ")") {
                --paren;
            } else if (paren == 0 && s == "<") {
                ++angle;
            } else if (paren == 0 && s == ">") {
                if (--angle == 0) return i + 1;
            } else if (s == ";" || s == "{") {
                break;  // malformed; bail out of the template intro
            }
        }
        return i;
    }

    /// Finds the matching ')' for the '(' at `i`.
    std::size_t match_paren(std::size_t i) const {
        int depth = 0;
        for (; i < t_.size(); ++i) {
            if (t_[i].text == "(") ++depth;
            if (t_[i].text == ")" && --depth == 0) return i;
        }
        return t_.size();
    }

    // ---- class / namespace regions ------------------------------------

    void scan_region(std::size_t begin, std::size_t end,
                     const std::string& class_name, bool at_class) {
        std::size_t i = begin;
        std::size_t decl_start = begin;
        bool saw_assign = false;       // '=' seen since decl_start
        bool saw_operator = false;     // 'operator' keyword seen
        std::string operator_syms;     // symbol tokens after 'operator'
        std::size_t first_skipped_brace = t_.size();

        auto reset_decl = [&](std::size_t next) {
            decl_start = next;
            saw_assign = false;
            saw_operator = false;
            operator_syms.clear();
            first_skipped_brace = t_.size();
        };

        while (i < end) {
            const Token& tok = t_[i];

            if (tok.text == ";") {
                if (at_class) {
                    record_member(decl_start, i, first_skipped_brace,
                                  saw_assign, class_name);
                }
                reset_decl(i + 1);
                ++i;
                continue;
            }
            if (tok.text == "}") {  // stray (region boundary handled by caller)
                reset_decl(i + 1);
                ++i;
                continue;
            }
            if (at_class && tok.is_identifier &&
                (tok.text == "public" || tok.text == "private" ||
                 tok.text == "protected") &&
                is(i + 1, ":")) {
                reset_decl(i + 2);
                i += 2;
                continue;
            }
            if (tok.is_identifier && tok.text == "template" &&
                is(i + 1, "<")) {
                // Restart the declaration after the parameter list so the
                // `class T` inside `<...>` cannot masquerade as a class
                // definition when the '{' is classified later.
                i = skip_angles(i + 1);
                reset_decl(i);
                continue;
            }
            if (tok.is_identifier && tok.text == "operator") {
                saw_operator = true;
                ++i;
                while (i < end && !t_[i].is_identifier &&
                       t_[i].text != "(") {
                    operator_syms += t_[i].text;
                    ++i;
                }
                // `operator()` : the symbol is the first paren pair.
                if (operator_syms.empty() && is(i, "(") &&
                    is(i + 1, ")")) {
                    operator_syms = "()";
                    i += 2;
                }
                // conversion operators: `operator Type` — consume the
                // type tokens up to '('.
                while (i < end && t_[i].text != "(" && t_[i].text != ";" &&
                       t_[i].text != "{") {
                    operator_syms += t_[i].text;
                    ++i;
                }
                continue;
            }

            if (tok.text == "=") {
                saw_assign = true;
                ++i;
                continue;
            }

            if (tok.text == "(" && !saw_assign) {
                Pending p;
                if (pending_signature(i, decl_start, saw_operator,
                                      operator_syms, p)) {
                    const std::size_t after =
                        try_function(i, p, class_name, at_class);
                    if (after != 0) {
                        reset_decl(after);
                        i = after;
                        continue;
                    }
                }
                // Not a function: skip the parenthesized group wholesale
                // so commas/angles inside it cannot confuse the scan.
                i = match_paren(i) + 1;
                continue;
            }

            if (tok.text == "{") {
                const std::size_t close = brace_match_.at(i);
                const Classified kind = classify_brace(decl_start, i);
                switch (kind.kind) {
                    case Classified::kNamespace:
                        scan_region(i + 1, close, "", /*at_class=*/false);
                        break;
                    case Classified::kClass:
                        register_class(kind.name, t_[decl_start].line);
                        scan_region(i + 1, close, kind.name,
                                    /*at_class=*/true);
                        break;
                    case Classified::kSkip:
                        break;  // enum/union/initializer: opaque
                    case Classified::kMemberInit:
                        if (first_skipped_brace == t_.size()) {
                            first_skipped_brace = i;
                        }
                        i = close + 1;
                        continue;  // decl continues after the '}'
                }
                reset_decl(close + 1);
                i = close + 1;
                continue;
            }

            ++i;
        }
    }

    struct Classified {
        enum Kind { kNamespace, kClass, kSkip, kMemberInit } kind = kSkip;
        std::string name;
    };

    /// Decides what the '{' at `brace` opens, given the declaration
    /// tokens [decl_start, brace).
    Classified classify_brace(std::size_t decl_start,
                              std::size_t brace) const {
        Classified c;
        bool saw_enum = false;
        for (std::size_t j = decl_start; j < brace; ++j) {
            const std::string& s = t_[j].text;
            if (s == "enum" || s == "union") saw_enum = true;
            if (s == "namespace") {
                c.kind = Classified::kNamespace;
                // anonymous namespaces have no name token before '{'
                if (brace > j + 1 && t_[brace - 1].is_identifier) {
                    c.name = t_[brace - 1].text;
                }
                return c;
            }
            if ((s == "class" || s == "struct") && !saw_enum) {
                // name = identifier right after the keyword (skips any
                // base-clause tokens between the name and the brace)
                if (j + 1 < brace && t_[j + 1].is_identifier) {
                    c.kind = Classified::kClass;
                    c.name = t_[j + 1].text;
                    return c;
                }
                c.kind = Classified::kSkip;  // anonymous struct
                return c;
            }
        }
        if (saw_enum) {
            c.kind = Classified::kSkip;
            return c;
        }
        // A brace directly after an identifier inside a declaration is a
        // brace initializer (`std::atomic<bool> done{false};`).
        if (brace > decl_start && (t_[brace - 1].is_identifier ||
                                   t_[brace - 1].text == ">")) {
            c.kind = Classified::kMemberInit;
            return c;
        }
        c.kind = Classified::kSkip;
        return c;
    }

    void register_class(const std::string& name, int /*line*/) {
        out_.class_files[name].insert(file_);
        out_.class_methods.emplace(name, std::set<std::string>());
    }

    // ---- function signatures ------------------------------------------

    /// Checks whether the '(' at `paren` plausibly opens a parameter
    /// list (identifier before it, no '=' earlier in the declaration)
    /// and fills in the name/qualifier.
    bool pending_signature(std::size_t paren, std::size_t decl_start,
                           bool saw_operator,
                           const std::string& operator_syms,
                           Pending& p) const {
        if (paren == decl_start) return false;
        p.decl_start = decl_start;
        if (saw_operator) {
            p.name = "operator" + operator_syms;
            // qualifier: `bool Class::operator==(...)`
            std::size_t j = paren;
            while (j > decl_start && t_[j - 1].text != "operator") --j;
            if (j > decl_start + 1 && t_[j - 2].text == "::" &&
                t_[j - 3].is_identifier) {
                p.qualifier = t_[j - 3].text;
            }
            return true;
        }
        const Token& prev = t_[paren - 1];
        if (!prev.is_identifier || control_keywords().count(prev.text) > 0) {
            return false;
        }
        p.name = prev.text;
        std::size_t j = paren - 1;
        if (j > decl_start && t_[j - 1].text == "~") {
            p.is_dtor = true;
            --j;
        }
        if (j > decl_start + 1 && t_[j - 1].text == "::" &&
            t_[j - 2].is_identifier) {
            p.qualifier = t_[j - 2].text;
        }
        return true;
    }

    /// Attempts to parse a function declaration/definition whose
    /// parameter list opens at `paren`. Returns the token index to
    /// resume scanning at (after the ';' or the body '}'), or 0 if this
    /// was not a function after all.
    std::size_t try_function(std::size_t paren, const Pending& p,
                             const std::string& class_name, bool at_class) {
        const std::size_t close = match_paren(paren);
        if (close >= t_.size()) return 0;

        std::size_t i = close + 1;
        // Suffix: const/noexcept(...)/override/&&/-> Type ... until one of
        // '{', ';', '=', ':'.
        while (i < t_.size()) {
            const std::string& s = t_[i].text;
            if (s == "{" || s == ";" || s == "=" || s == ":") break;
            if (s == "(") {
                i = match_paren(i) + 1;  // noexcept(...)
                continue;
            }
            if (!signature_suffix_token(t_[i])) return 0;
            ++i;
        }
        if (i >= t_.size()) return 0;

        const std::string owner =
            !p.qualifier.empty() ? p.qualifier : (at_class ? class_name : "");
        const bool ctor_or_dtor =
            p.is_dtor || (!owner.empty() && p.name == owner);

        if (t_[i].text == ";") {
            // Declaration only: register the method name for dispatch.
            if (!owner.empty()) declare_method(owner, p);
            return i + 1;
        }
        if (t_[i].text == "=") {
            // `= default/delete/0;` — still a declaration (pure-virtual
            // declarations matter for the virtual-dispatch fallback).
            if (!owner.empty()) declare_method(owner, p);
            while (i < t_.size() && t_[i].text != ";") ++i;
            return i < t_.size() ? i + 1 : t_.size();
        }
        if (t_[i].text == ":") {
            if (!ctor_or_dtor) return 0;  // only ctors take init lists
            ++i;
            int paren_depth = 0;
            while (i < t_.size()) {
                const std::string& s = t_[i].text;
                if (s == "(") ++paren_depth;
                if (s == ")") --paren_depth;
                if (s == ";") return 0;  // malformed
                if (paren_depth == 0 && s == "{") {
                    // Brace after an identifier is a member brace-init
                    // (`b_{x}`); anything else opens the body.
                    if (t_[i - 1].is_identifier || t_[i - 1].text == ">") {
                        i = brace_match_.at(i) + 1;
                        continue;
                    }
                    break;
                }
                ++i;
            }
            if (i >= t_.size()) return 0;
        }

        // t_[i] == "{": the body.
        const std::size_t body_open = i;
        const std::size_t body_close = brace_match_.at(body_open);

        FunctionDef fn;
        fn.name = p.name;
        fn.class_name = owner;
        fn.qualified = owner.empty() ? p.name : owner + "::" + p.name;
        fn.file = file_;
        fn.line = t_[p.decl_start].line;
        fn.body_begin = body_open + 1;
        fn.body_end = body_close;
        fn.is_ctor_or_dtor = ctor_or_dtor;
        for (const Annotation& a : annotations_for(fn.line)) {
            if (a.kind == "nonblocking") fn.nonblocking = true;
            if (a.kind == "acquires") fn.acquires.push_back(a.arg);
        }
        if (!owner.empty()) declare_method(owner, p);

        record_params(paren, close, fn);
        scan_function_body(fn);
        out_.functions.push_back(std::move(fn));
        return body_close + 1;
    }

    void declare_method(const std::string& owner, const Pending& p) {
        if (p.is_dtor || p.name == owner) return;  // ctors/dtors excluded
        out_.class_methods[owner].insert(p.name);
    }

    /// Records parameter name -> type head for the list in
    /// (paren, close). Commas are split at angle/paren depth 0 so
    /// template arguments stay inside their parameter; default-argument
    /// tokens after '=' are cut before the name is taken.
    void record_params(std::size_t paren, std::size_t close,
                       FunctionDef& fn) const {
        std::size_t begin = paren + 1;
        int depth = 0;
        int angle = 0;
        auto record = [&](std::size_t pb, std::size_t pe) {
            for (std::size_t j = pb; j < pe; ++j) {
                if (t_[j].text == "=") {
                    pe = j;
                    break;
                }
            }
            std::size_t name_at = t_.size();
            for (std::size_t j = pe; j-- > pb;) {
                if (t_[j].is_identifier) {
                    name_at = j;
                    break;
                }
                if (t_[j].text != "]" && t_[j].text != "[") return;
            }
            if (name_at >= t_.size() || name_at == pb) return;  // unnamed
            const std::string type = type_head(pb, name_at);
            if (!type.empty()) fn.param_types[t_[name_at].text] = type;
        };
        for (std::size_t j = begin; j < close; ++j) {
            const std::string& s = t_[j].text;
            if (s == "(" || s == "[") ++depth;
            if (s == ")" || s == "]") --depth;
            if (depth == 0 && s == "<") ++angle;
            if (depth == 0 && s == ">") --angle;
            if (s == "," && depth == 0 && angle == 0) {
                record(begin, j);
                begin = j + 1;
            }
        }
        if (begin < close) record(begin, close);
    }

    // ---- member declarations ------------------------------------------

    /// Called at a ';' at class scope: tokens [decl_start, semi) are a
    /// member declaration (method declarations were already consumed by
    /// the '(' handler).
    void record_member(std::size_t decl_start, std::size_t semi,
                       std::size_t first_skipped_brace, bool saw_assign,
                       const std::string& class_name) {
        if (decl_start >= semi || class_name.empty()) return;
        // Name: last identifier before the first '=' / brace-init / ';'.
        std::size_t cut = semi;
        if (first_skipped_brace < cut) cut = first_skipped_brace;
        if (saw_assign) {
            for (std::size_t j = decl_start; j < cut; ++j) {
                if (t_[j].text == "=") {
                    cut = j;
                    break;
                }
            }
        }
        std::size_t name_at = t_.size();
        for (std::size_t j = cut; j-- > decl_start;) {
            if (t_[j].is_identifier) {
                name_at = j;
                break;
            }
            if (t_[j].text != "]" && t_[j].text != "[") break;  // arrays ok
        }
        if (name_at >= t_.size() || name_at == decl_start) return;

        MemberDecl m;
        m.class_name = class_name;
        m.name = t_[name_at].text;
        m.file = file_;
        m.line = t_[name_at].line;
        m.type_head = type_head(decl_start, name_at);
        if (m.type_head.empty() ||
            control_keywords().count(m.name) > 0 ||
            m.type_head == "using" || m.type_head == "typedef") {
            return;
        }
        m.is_mutex = mutex_types().count(m.type_head) > 0;
        for (const Annotation& a : annotations_for(m.line)) {
            if (a.kind == "guarded_by") m.guarded_by = a.arg;
        }
        if (m.is_mutex) out_.class_mutexes[class_name].insert(m.name);
        out_.member_types[{class_name, m.name}] = m.type_head;
        out_.members.push_back(std::move(m));
    }

    /// First meaningful type identifier of a declaration: qualifiers and
    /// namespace prefixes (`foo::`) are skipped, so
    /// `mutable std::shared_mutex map_mutex_` -> "shared_mutex" and
    /// `net::RequestHandler& handler_` -> "RequestHandler". Smart-pointer
    /// wrappers and element containers are looked through
    /// (`std::vector<std::unique_ptr<WorkerQueue>> queues_` ->
    /// "WorkerQueue") so calls and lock acquisitions through them keep
    /// resolving to the element type.
    std::string type_head(std::size_t begin, std::size_t end) const {
        static const std::set<std::string> kWrappers = {
            "unique_ptr", "shared_ptr", "weak_ptr", "optional",
            "reference_wrapper", "vector", "deque", "array"};
        // `unsigned`, `long`, ... double as complete types ("long x;"):
        // remember the last one seen so such declarations still get a
        // head instead of vanishing from the symbol table.
        std::string integer_head;
        for (std::size_t j = begin; j < end; ++j) {
            if (t_[j].text == "[" && is(j + 1, "[")) {
                // attribute: skip to ']]'
                while (j + 1 < end &&
                       !(t_[j].text == "]" && t_[j + 1].text == "]")) {
                    ++j;
                }
                ++j;
                continue;
            }
            if (!t_[j].is_identifier) continue;
            if (type_qualifiers().count(t_[j].text) > 0) {
                if (t_[j].text == "unsigned" || t_[j].text == "signed" ||
                    t_[j].text == "long" || t_[j].text == "short") {
                    integer_head = t_[j].text;
                }
                continue;
            }
            if (t_[j].text == "using" || t_[j].text == "typedef") {
                return t_[j].text;
            }
            if (is(j + 1, "::")) continue;  // namespace prefix
            if (kWrappers.count(t_[j].text) > 0) continue;
            return t_[j].text;
        }
        return integer_head;
    }

    // ---- function bodies ----------------------------------------------

    bool lambda_introducer(std::size_t bracket) const {
        if (bracket == 0) return false;
        const Token& prev = t_[bracket - 1];
        if (prev.is_identifier) {
            return prev.text == "return" || prev.text == "case";
        }
        static const std::set<std::string> kBefore = {
            "(", ",", "=", "{", ";", "&&", "||", "!", ":", "?", "}"};
        return kBefore.count(prev.text) > 0;
    }

    void scan_function_body(FunctionDef& fn) {
        std::vector<std::size_t> open_braces;  // within the body
        std::size_t i = fn.body_begin;
        while (i < fn.body_end) {
            const Token& tok = t_[i];

            if (tok.text == "{") {
                open_braces.push_back(i);
                ++i;
                continue;
            }
            if (tok.text == "}") {
                if (!open_braces.empty()) open_braces.pop_back();
                ++i;
                continue;
            }

            // Attributes: skip `[[...]]`.
            if (tok.text == "[" && is(i + 1, "[")) {
                while (i + 1 < fn.body_end &&
                       !(t_[i].text == "]" && t_[i + 1].text == "]")) {
                    ++i;
                }
                i += 2;
                continue;
            }

            // Lambdas: the body is detached — it runs on whatever thread
            // later invokes it, so nothing inside may be attributed to
            // this function. Record the range and skip it.
            if (tok.text == "[" && lambda_introducer(i)) {
                const std::size_t skip_to = try_skip_lambda(i, fn.body_end);
                if (skip_to != 0) {
                    i = skip_to;
                    continue;
                }
                ++i;
                continue;
            }

            // RAII lock acquisition.
            if (tok.is_identifier && lock_classes().count(tok.text) > 0) {
                const std::size_t after =
                    try_lock_decl(i, fn, open_braces);
                if (after != 0) {
                    i = after;
                    continue;
                }
            }

            // Call site: identifier followed by '('.
            if (tok.is_identifier && is(i + 1, "(") &&
                control_keywords().count(tok.text) == 0 &&
                tok.text != "operator") {
                fn.calls.push_back(make_call(i));
            }

            ++i;
        }
    }

    /// Returns the token index after the lambda's body, or 0 if the '['
    /// at `bracket` turned out not to introduce a lambda.
    std::size_t try_skip_lambda(std::size_t bracket, std::size_t limit) {
        std::size_t i = bracket;
        int depth = 0;
        for (; i < limit; ++i) {  // capture list (may nest: [x = a[0]])
            if (t_[i].text == "[") ++depth;
            if (t_[i].text == "]" && --depth == 0) break;
        }
        if (i >= limit) return 0;
        ++i;
        if (is(i, "(")) i = match_paren(i) + 1;  // parameters
        while (i < limit && t_[i].text != "{") {
            const std::string& s = t_[i].text;
            if (s == "(") {
                i = match_paren(i) + 1;  // noexcept(...)
                continue;
            }
            if (!signature_suffix_token(t_[i]) && s != "mutable") return 0;
            ++i;
        }
        if (i >= limit || t_[i].text != "{") return 0;
        const auto it = brace_match_.find(i);
        if (it == brace_match_.end() || it->second > limit) return 0;
        out_.lambdas[file_].push_back({i + 1, it->second});
        return it->second + 1;
    }

    /// Parses `std::scoped_lock name(args);` style declarations starting
    /// at the lock-class token. Returns the resume index, or 0 if this
    /// token was not a lock declaration (e.g. `std::unique_lock` used as
    /// a type in a parameter).
    std::size_t try_lock_decl(std::size_t cls, FunctionDef& fn,
                              const std::vector<std::size_t>& open_braces) {
        std::size_t i = cls + 1;
        if (is(i, "<")) i = skip_angles(i);
        if (i >= t_.size() || !t_[i].is_identifier) return 0;  // no var name
        const std::size_t var = i;
        ++i;
        if (!is(i, "(") && !is(i, "{")) return 0;  // deferred/param: skip
        const bool paren_form = t_[i].text == "(";
        const std::size_t open = i;
        const std::size_t close =
            paren_form ? match_paren(open) : brace_match_.at(open);
        if (close >= t_.size()) return 0;

        // Scope: from the declaration to the '}' of the enclosing block.
        std::size_t scope_end = fn.body_end;
        if (!open_braces.empty()) {
            scope_end = brace_match_.at(open_braces.back());
        }

        // Split the argument list on top-level commas.
        std::vector<std::pair<std::size_t, std::size_t>> args;
        std::size_t arg_begin = open + 1;
        int depth = 0;
        for (std::size_t j = open + 1; j < close; ++j) {
            const std::string& s = t_[j].text;
            if (s == "(" || s == "[" || s == "{") ++depth;
            if (s == ")" || s == "]" || s == "}") --depth;
            if (s == "," && depth == 0) {
                args.emplace_back(arg_begin, j);
                arg_begin = j + 1;
            }
        }
        if (arg_begin < close) args.emplace_back(arg_begin, close);

        bool try_lock = false;
        std::vector<std::string> mutexes;
        std::vector<std::string> receivers;
        std::vector<int> lines;
        for (const auto& [ab, ae] : args) {
            std::string first_ident;
            std::string last_ident;
            int line = t_[var].line;
            for (std::size_t j = ab; j < ae; ++j) {
                if (t_[j].is_identifier) {
                    if (first_ident.empty()) first_ident = t_[j].text;
                    last_ident = t_[j].text;
                    line = t_[j].line;
                }
            }
            if (last_ident.empty()) continue;
            if (last_ident == "try_to_lock") {
                try_lock = true;
                continue;
            }
            if (last_ident == "defer_lock") return close + 1;  // no lock
            if (last_ident == "adopt_lock") continue;  // already held
            mutexes.push_back(last_ident);
            // Member-access chain: the leading identifier names the
            // object whose mutex this is (`state_->mutex`).
            receivers.push_back(first_ident == last_ident ? ""
                                                          : first_ident);
            lines.push_back(line);
        }
        for (std::size_t k = 0; k < mutexes.size(); ++k) {
            LockSite site;
            site.mutex_expr = mutexes[k];
            site.receiver = receivers[k];
            site.line = lines[k];
            site.token = cls;
            site.scope_end = scope_end;
            site.try_lock = try_lock;
            fn.locks.push_back(std::move(site));
        }
        return close + 1;
    }

    RawCall make_call(std::size_t name_at) const {
        RawCall c;
        c.name = t_[name_at].text;
        c.line = t_[name_at].line;
        c.token = name_at;
        if (name_at == 0) return c;
        const Token& prev = t_[name_at - 1];
        if (prev.text == "::") {
            if (name_at >= 2 && t_[name_at - 2].is_identifier) {
                c.qualifier = t_[name_at - 2].text;
            } else {
                c.global_ns = true;  // `::send(...)`
            }
        } else if (prev.text == "." || prev.text == "->") {
            if (name_at >= 2 && t_[name_at - 2].is_identifier) {
                if (t_[name_at - 2].text == "this") {
                    c.via_this = true;
                } else {
                    c.receiver = t_[name_at - 2].text;
                    // Walk the whole access chain leftwards while it is
                    // `ident (. | ->) ident ...`; a `this->` root means
                    // the chain starts at a member of the own class.
                    std::size_t j = name_at - 2;
                    c.chain.push_back(t_[j].text);
                    while (j >= 2 && (t_[j - 1].text == "." ||
                                      t_[j - 1].text == "->") &&
                           t_[j - 2].is_identifier) {
                        j -= 2;
                        if (t_[j].text == "this") break;
                        c.chain.push_back(t_[j].text);
                    }
                    std::reverse(c.chain.begin(), c.chain.end());
                    // A non-identifier head (`]`, `)`) means the root is
                    // an expression we cannot type: drop the chain so the
                    // resolver treats the receiver as unknown.
                    if (j >= 1 && (t_[j - 1].text == "]" ||
                                   t_[j - 1].text == ")" ||
                                   t_[j - 1].text == "." ||
                                   t_[j - 1].text == "->")) {
                        c.chain.clear();
                    }
                }
            }
            c.is_member_call = true;
        }
        return c;
    }
};

}  // namespace

bool SymbolTable::in_lambda(std::size_t file, std::size_t token) const {
    if (file >= lambdas.size()) return false;
    for (const auto& [begin, end] : lambdas[file]) {
        if (token >= begin && token < end) return true;
    }
    return false;
}

SymbolTable build_symbols(const std::vector<LexedFile>& files) {
    SymbolTable table;
    table.lambdas.resize(files.size());
    for (std::size_t i = 0; i < files.size(); ++i) {
        FileScan scan(files[i], i, table);
        scan.run();
        std::sort(table.lambdas[i].begin(), table.lambdas[i].end());
    }
    // Out-of-line definitions also register their method names.
    for (const FunctionDef& fn : table.functions) {
        if (!fn.class_name.empty() && !fn.is_ctor_or_dtor) {
            table.class_methods[fn.class_name].insert(fn.name);
        }
    }
    return table;
}

}  // namespace mielint
