#include "semantic.hpp"

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "callgraph.hpp"
#include "symbols.hpp"

namespace mielint {

namespace {

/// Calls considered blocking wherever they appear (method or free).
/// Project functions with these names (TaskGroup::wait, thread joins)
/// are blocking too, so matching by bare name is intentional.
const std::set<std::string>& blocking_always() {
    static const std::set<std::string> kSet = {
        "fsync",      "fdatasync",  "sync_file_range", "epoll_wait",
        "poll",       "ppoll",      "select",          "pselect",
        "sleep_for",  "sleep_until", "sleep",          "usleep",
        "nanosleep",  "wait",       "wait_for",        "wait_until",
        "join",       "flock",      "connect"};
    return kSet;
}

/// Socket calls that only count when spelled `::name(...)` — plenty of
/// project methods are legitimately named `send`/`accept` and judged on
/// their own bodies instead.
const std::set<std::string>& blocking_global_only() {
    static const std::set<std::string> kSet = {
        "send",    "recv",    "sendto", "recvfrom",
        "sendmsg", "recvmsg", "accept", "accept4"};
    return kSet;
}

/// Condition-variable waits release their mutex while blocked, so they
/// never mark the mutex they are passed as slow (they do still count as
/// blocking operations in their own right).
bool wait_family(const std::string& name) {
    return name == "wait" || name == "wait_for" || name == "wait_until";
}

struct Analysis {
    const std::vector<LexedFile>& files;
    const Config& config;
    SymbolTable symbols;
    CallGraph graph;
    /// per file: class names visible through its include closure.
    std::vector<std::set<std::string>> visible_classes;
    /// node (qualified name) -> defs / outgoing edges / facts.
    std::map<std::string, std::vector<std::size_t>> node_defs;
    std::map<std::string, bool> raw_blocking;

    explicit Analysis(const std::vector<LexedFile>& f, const Config& c)
        : files(f), config(c) {}
};

bool is_blocking_call(const Analysis& a, const RawCall& call) {
    if (blocking_always().count(call.name) > 0) return true;
    if (a.config.blocking_calls.count(call.name) > 0) return true;
    return call.global_ns && blocking_global_only().count(call.name) > 0;
}

/// Resolves a raw mutex name in the context of `fn`:
///  - a mutex member of the enclosing class wins ("Class::name"),
///  - else a unique visible class declaring a mutex member of that name,
///  - else the bare name (same-named mutexes merge — conservative).
std::string resolve_mutex(const Analysis& a, const FunctionDef& fn,
                          const std::string& raw) {
    if (!fn.class_name.empty()) {
        const auto it = a.symbols.class_mutexes.find(fn.class_name);
        if (it != a.symbols.class_mutexes.end() &&
            it->second.count(raw) > 0) {
            return fn.class_name + "::" + raw;
        }
    }
    std::string found;
    for (const auto& [cls, names] : a.symbols.class_mutexes) {
        if (names.count(raw) == 0) continue;
        if (a.visible_classes[fn.file].count(cls) == 0) continue;
        if (!found.empty()) return raw;  // ambiguous: merge on bare name
        found = cls + "::" + raw;
    }
    return found.empty() ? raw : found;
}

/// Lock sites additionally carry the leading identifier of member-access
/// chains (`queues_[i]->mutex`, `state.mutex`): when that names a typed
/// parameter or data member of the enclosing class, the mutex belongs to
/// that type — which keeps it out of the conservative bare-name merge.
std::string resolve_lock(const Analysis& a, const FunctionDef& fn,
                         const LockSite& site) {
    if (!site.receiver.empty()) {
        std::string type;
        const auto pt = fn.param_types.find(site.receiver);
        if (pt != fn.param_types.end()) {
            type = pt->second;
        } else if (!fn.class_name.empty()) {
            const auto it = a.symbols.member_types.find(
                {fn.class_name, site.receiver});
            if (it != a.symbols.member_types.end()) type = it->second;
        }
        if (!type.empty()) {
            const auto mx = a.symbols.class_mutexes.find(type);
            if (mx != a.symbols.class_mutexes.end() &&
                mx->second.count(site.mutex_expr) > 0) {
                return type + "::" + site.mutex_expr;
            }
        }
    }
    return resolve_mutex(a, fn, site.mutex_expr);
}

void prepare(Analysis& a) {
    a.symbols = build_symbols(a.files);
    a.graph = build_callgraph(a.files, a.symbols);

    a.visible_classes.resize(a.files.size());
    for (std::size_t i = 0; i < a.files.size(); ++i) {
        const std::set<std::size_t> closure(a.graph.closure[i].begin(),
                                            a.graph.closure[i].end());
        for (const auto& [cls, decl_files] : a.symbols.class_files) {
            for (const std::size_t f : decl_files) {
                if (closure.count(f) > 0) {
                    a.visible_classes[i].insert(cls);
                    break;
                }
            }
        }
        // Out-of-line definitions make their class name resolvable from
        // the defining translation unit as well.
        for (const FunctionDef& fn : a.symbols.functions) {
            if (fn.file == i && !fn.class_name.empty()) {
                a.visible_classes[i].insert(fn.class_name);
            }
        }
    }

    a.node_defs = a.graph.defs;

    // raw_blocking: does the node (or anything it can reach) invoke a
    // blocking primitive? Fixpoint over the (possibly cyclic) graph.
    for (const auto& [node, defs] : a.node_defs) {
        bool own = false;
        for (const std::size_t d : defs) {
            for (const RawCall& call : a.symbols.functions[d].calls) {
                if (is_blocking_call(a, call)) {
                    own = true;
                    break;
                }
            }
        }
        a.raw_blocking[node] = own;
    }
    bool changed = true;
    while (changed) {
        changed = false;
        for (const auto& [node, defs] : a.node_defs) {
            if (a.raw_blocking[node]) continue;
            for (const std::size_t d : defs) {
                for (const CallEdge& e : a.graph.edges[d]) {
                    if (a.raw_blocking[e.callee]) {
                        a.raw_blocking[node] = true;
                        changed = true;
                        break;
                    }
                }
                if (a.raw_blocking[node]) break;
            }
        }
    }
}

void report(const Analysis& a, std::vector<Finding>& out,
            const std::string& rule, std::size_t file, int line,
            std::string message) {
    const LexedFile& f = a.files[file];
    if (a.config.path_allowed(rule, f.display)) return;
    if (f.allowed(rule, line)) return;
    out.push_back(Finding{rule, f.display, line, std::move(message)});
}

// ---------------------------------------------------------------- R6 ----

void rule_r6(const Analysis& a, std::vector<Finding>& out) {
    // Pass 1: slow mutexes — held (lexically) around a blocking
    // operation somewhere in the project.
    std::set<std::string> slow;
    for (std::size_t d = 0; d < a.symbols.functions.size(); ++d) {
        const FunctionDef& fn = a.symbols.functions[d];
        for (const LockSite& lock : fn.locks) {
            const std::string resolved = resolve_lock(a, fn, lock);
            if (slow.count(resolved) > 0) continue;
            bool blocking_inside = false;
            for (const RawCall& call : fn.calls) {
                if (call.token <= lock.token || call.token >= lock.scope_end) {
                    continue;
                }
                if (is_blocking_call(a, call) && !wait_family(call.name)) {
                    blocking_inside = true;
                    break;
                }
            }
            if (!blocking_inside) {
                for (const CallEdge& e : a.graph.edges[d]) {
                    if (e.token > lock.token && e.token < lock.scope_end &&
                        a.raw_blocking.count(e.callee) > 0 &&
                        a.raw_blocking.at(e.callee)) {
                        blocking_inside = true;
                        break;
                    }
                }
            }
            if (blocking_inside) slow.insert(resolved);
        }
    }

    // Pass 2: BFS from every nonblocking root; report each blocking
    // primitive and each slow-mutex acquisition in reach, with the call
    // path that gets there.
    std::set<std::string> roots;
    for (const FunctionDef& fn : a.symbols.functions) {
        if (fn.nonblocking) roots.insert(fn.qualified);
    }
    std::set<std::pair<std::string, int>> reported;  // (file, line) dedup
    for (const std::string& root : roots) {
        std::map<std::string, std::string> parent;  // node -> caller
        std::deque<std::string> queue = {root};
        parent[root] = "";
        while (!queue.empty()) {
            const std::string node = queue.front();
            queue.pop_front();
            auto path_to = [&](const std::string& n) {
                std::string path = n;
                for (std::string at = parent.at(n); !at.empty();
                     at = parent.at(at)) {
                    path = at + " -> " + path;
                }
                return path;
            };
            const auto defs_it = a.node_defs.find(node);
            if (defs_it == a.node_defs.end()) continue;
            for (const std::size_t d : defs_it->second) {
                const FunctionDef& fn = a.symbols.functions[d];
                for (const RawCall& call : fn.calls) {
                    if (!is_blocking_call(a, call)) continue;
                    if (!reported
                             .insert({a.files[fn.file].display, call.line})
                             .second) {
                        continue;
                    }
                    report(a, out, "R6", fn.file, call.line,
                           "blocking call '" + call.name +
                               "' reachable from nonblocking '" + root +
                               "' via " + path_to(node));
                }
                for (const LockSite& lock : fn.locks) {
                    if (lock.try_lock) continue;  // cannot block
                    const std::string resolved =
                        resolve_lock(a, fn, lock);
                    if (slow.count(resolved) == 0) continue;
                    if (!reported
                             .insert({a.files[fn.file].display, lock.line})
                             .second) {
                        continue;
                    }
                    report(a, out, "R6", fn.file, lock.line,
                           "acquires '" + resolved +
                               "', which is held around blocking operations "
                               "elsewhere; reachable from nonblocking '" +
                               root + "' via " + path_to(node));
                }
                for (const CallEdge& e : a.graph.edges[d]) {
                    if (parent.count(e.callee) == 0) {
                        parent[e.callee] = node;
                        queue.push_back(e.callee);
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------- R7 ----

struct OrderEdge {
    std::size_t file = 0;
    int line = 0;
};

void rule_r7(const Analysis& a, std::vector<Finding>& out) {
    // Acquisition closure per node: every mutex the node (or a callee)
    // acquires. try_to_lock acquisitions are excluded as *targets* — a
    // failed try returns instead of waiting, so it cannot deadlock.
    std::map<std::string, std::set<std::string>> acq;
    for (const auto& [node, defs] : a.node_defs) {
        for (const std::size_t d : defs) {
            const FunctionDef& fn = a.symbols.functions[d];
            for (const LockSite& lock : fn.locks) {
                if (lock.try_lock) continue;
                acq[node].insert(resolve_lock(a, fn, lock));
            }
        }
    }
    bool changed = true;
    while (changed) {
        changed = false;
        for (const auto& [node, defs] : a.node_defs) {
            for (const std::size_t d : defs) {
                for (const CallEdge& e : a.graph.edges[d]) {
                    const auto it = acq.find(e.callee);
                    if (it == acq.end()) continue;
                    for (const std::string& m : it->second) {
                        if (acq[node].insert(m).second) changed = true;
                    }
                }
            }
        }
    }

    // Lock-order edges L -> M: while L is (lexically) held, M gets
    // acquired — directly, via a callee, or via an acquires() contract.
    std::map<std::pair<std::string, std::string>, OrderEdge> edges;
    auto add_edge = [&](const std::string& from, const std::string& to,
                        std::size_t file, int line) {
        if (from == to) return;  // instances are indistinguishable
        edges.emplace(std::make_pair(from, to), OrderEdge{file, line});
    };
    for (std::size_t d = 0; d < a.symbols.functions.size(); ++d) {
        const FunctionDef& fn = a.symbols.functions[d];
        for (const LockSite& held : fn.locks) {
            const std::string from = resolve_lock(a, fn, held);
            for (const LockSite& later : fn.locks) {
                if (later.try_lock) continue;
                if (later.token <= held.token ||
                    later.token >= held.scope_end) {
                    continue;
                }
                add_edge(from, resolve_lock(a, fn, later),
                         fn.file, later.line);
            }
            for (const CallEdge& e : a.graph.edges[d]) {
                if (e.token <= held.token || e.token >= held.scope_end) {
                    continue;
                }
                const auto it = acq.find(e.callee);
                if (it == acq.end()) continue;
                for (const std::string& m : it->second) {
                    add_edge(from, m, fn.file, e.line);
                }
            }
        }
        // acquires(mu): the body runs with mu held, so everything it
        // acquires orders after mu.
        for (const std::string& raw : fn.acquires) {
            const std::string from = resolve_mutex(a, fn, raw);
            for (const LockSite& lock : fn.locks) {
                if (lock.try_lock) continue;
                add_edge(from, resolve_lock(a, fn, lock),
                         fn.file, lock.line);
            }
            for (const CallEdge& e : a.graph.edges[d]) {
                const auto it = acq.find(e.callee);
                if (it == acq.end()) continue;
                for (const std::string& m : it->second) {
                    add_edge(from, m, fn.file, e.line);
                }
            }
        }
    }

    // Cycle detection: DFS with colors; the first back edge found names
    // the cycle (deterministic — maps iterate in sorted order).
    std::map<std::string, std::vector<std::string>> adj;
    for (const auto& [pair, site] : edges) {
        adj[pair.first].push_back(pair.second);
    }
    std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
    std::vector<std::string> stack;
    std::vector<std::string> cycle;

    std::function<bool(const std::string&)> dfs =
        [&](const std::string& node) -> bool {
        color[node] = 1;
        stack.push_back(node);
        for (const std::string& next : adj[node]) {
            if (color[next] == 1) {
                const auto at =
                    std::find(stack.begin(), stack.end(), next);
                cycle.assign(at, stack.end());
                cycle.push_back(next);
                return true;
            }
            if (color[next] == 0 && dfs(next)) return true;
        }
        stack.pop_back();
        color[node] = 2;
        return false;
    };
    for (const auto& [node, _] : adj) {
        if (color[node] == 0 && dfs(node)) break;
    }
    if (cycle.empty()) return;

    std::string message = "lock-order cycle: ";
    for (std::size_t i = 0; i < cycle.size(); ++i) {
        if (i > 0) message += " -> ";
        message += cycle[i];
    }
    message += " (";
    for (std::size_t i = 0; i + 1 < cycle.size(); ++i) {
        const OrderEdge& e = edges.at({cycle[i], cycle[i + 1]});
        if (i > 0) message += ", ";
        message += cycle[i] + "->" + cycle[i + 1] + " at " +
                   a.files[e.file].display + ":" + std::to_string(e.line);
    }
    message += ")";
    const OrderEdge& first = edges.at({cycle[0], cycle[1]});
    report(a, out, "R7", first.file, first.line, std::move(message));
}

// ---------------------------------------------------------------- R8 ----

void rule_r8(const Analysis& a, std::vector<Finding>& out) {
    for (const MemberDecl& m : a.symbols.members) {
        if (m.guarded_by.empty()) continue;
        for (std::size_t d = 0; d < a.symbols.functions.size(); ++d) {
            const FunctionDef& fn = a.symbols.functions[d];
            if (fn.class_name != m.class_name) continue;
            if (fn.is_ctor_or_dtor) continue;  // no concurrent access yet

            const std::string target = resolve_mutex(a, fn, m.guarded_by);
            bool whole_body_held = false;
            for (const std::string& raw : fn.acquires) {
                if (resolve_mutex(a, fn, raw) == target) {
                    whole_body_held = true;
                    break;
                }
            }
            if (whole_body_held) continue;

            std::vector<std::pair<std::size_t, std::size_t>> held;
            for (const LockSite& lock : fn.locks) {
                if (resolve_lock(a, fn, lock) == target) {
                    held.emplace_back(lock.token, lock.scope_end);
                }
            }

            const auto& tokens = a.files[fn.file].tokens;
            std::set<int> reported_lines;
            for (std::size_t t = fn.body_begin; t < fn.body_end; ++t) {
                if (!tokens[t].is_identifier || tokens[t].text != m.name) {
                    continue;
                }
                if (a.symbols.in_lambda(fn.file, t)) continue;
                // `other.name` touches a different instance whose lock
                // this function cannot vouch for either way; only
                // accesses through `this` (implicit or explicit) count.
                if (t > fn.body_begin &&
                    (tokens[t - 1].text == "." ||
                     tokens[t - 1].text == "->") &&
                    !(t > fn.body_begin + 1 &&
                      tokens[t - 2].text == "this")) {
                    continue;
                }
                bool covered = false;
                for (const auto& [begin, end] : held) {
                    if (t > begin && t < end) {
                        covered = true;
                        break;
                    }
                }
                if (covered) continue;
                if (!reported_lines.insert(tokens[t].line).second) continue;
                report(a, out, "R8", fn.file, tokens[t].line,
                       "member '" + m.class_name + "::" + m.name +
                           "' is guarded by '" + target +
                           "' but accessed without holding it in '" +
                           fn.qualified +
                           "' (lock it, or annotate the function "
                           "// mielint: acquires(" +
                           m.guarded_by + ") if callers hold it)");
            }
        }
    }
}

}  // namespace

void run_semantic_rules(const std::vector<LexedFile>& files,
                        const Config& config, std::vector<Finding>& out) {
    Analysis a(files, config);
    prepare(a);
    rule_r6(a, out);
    rule_r7(a, out);
    rule_r8(a, out);
}

}  // namespace mielint
