// Lexical front end of mielint.
//
// The linter's rules operate on token streams, not ASTs: every project
// invariant it enforces (banned identifiers, memcmp on secrets, unordered
// iteration, header hygiene, secret-typed members) is recognizable from
// tokens plus light structural tracking, and a tokenizer keeps the tool
// dependency-free and fast enough to run on every file of the tree in CI.
//
// The lexer strips comments, string/char literals and preprocessor lines
// (so `#include <unordered_map>` or a word inside a doc comment never
// trips a rule), folds the handful of multi-character operators the rules
// care about (`::`, `->`, `==`, `!=`, `&&`, `||`, `++`, `--`) and records
// inline suppressions of the form
//
//     // mielint: allow(R3): reason
//
// which silence the named rules on the comment's line and the line below,
// plus the semantic annotations consumed by the symbol table
// (`mielint: nonblocking`, `mielint: acquires(mu_)`,
// `mielint: guarded_by(mu_)` — see symbols.hpp).
// `<` and `>` are deliberately left as single-character tokens so rules
// can track template-argument depth through nested closers like `>>`.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace mielint {

struct Token {
    std::string text;
    int line = 0;               // 1-based
    bool is_identifier = false;
};

/// A semantic marker parsed from a `// mielint: ...` comment.
/// kind is "nonblocking", "acquires" or "guarded_by"; arg carries the
/// mutex name for the latter two ("" for nonblocking).
struct Annotation {
    std::string kind;
    std::string arg;
};

struct LexedFile {
    std::string path;     // filesystem path the contents came from
    std::string display;  // path reported in findings (relative to root)
    std::vector<Token> tokens;
    std::vector<std::string> raw_lines;  // original text, for R4
    /// line -> rules suppressed there (and on the following line).
    std::map<int, std::set<std::string>> inline_allows;
    /// line -> semantic annotations written there. An annotation applies
    /// to the declaration starting on its own line or the line below
    /// (symbols.cpp does the attachment).
    std::map<int, std::vector<Annotation>> annotations;

    bool is_header() const {
        return display.size() >= 4 &&
               (display.rfind(".hpp") == display.size() - 4 ||
                display.rfind(".h") == display.size() - 2);
    }

    /// True if `rule` is suppressed for a finding on `line` by an inline
    /// allow-comment on the same or the preceding line.
    bool allowed(const std::string& rule, int line) const;
};

/// Tokenizes `contents` (see the header comment for what is stripped).
LexedFile lex(std::string path, std::string display,
              const std::string& contents);

}  // namespace mielint
