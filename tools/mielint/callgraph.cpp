#include "callgraph.hpp"

#include <algorithm>
#include <set>

namespace mielint {

namespace {

/// Quoted include paths of one file (system includes cannot declare
/// project symbols, so <...> is ignored).
std::vector<std::string> quoted_includes(const LexedFile& file) {
    std::vector<std::string> out;
    for (const std::string& raw : file.raw_lines) {
        std::size_t p = raw.find_first_not_of(" \t");
        if (p == std::string::npos || raw[p] != '#') continue;
        p = raw.find_first_not_of(" \t", p + 1);
        if (p == std::string::npos || raw.compare(p, 7, "include") != 0) {
            continue;
        }
        const std::size_t open = raw.find('"', p + 7);
        if (open == std::string::npos) continue;
        const std::size_t close = raw.find('"', open + 1);
        if (close == std::string::npos) continue;
        out.push_back(raw.substr(open + 1, close - open - 1));
    }
    return out;
}

}  // namespace

std::vector<std::vector<std::size_t>> include_closures(
    const std::vector<LexedFile>& files) {
    const std::size_t n = files.size();
    // Edge i -> j when file i includes file j, matched by path suffix
    // ("mie/server.hpp" hits "src/mie/server.hpp").
    std::vector<std::vector<std::size_t>> edges(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (const std::string& inc : quoted_includes(files[i])) {
            for (std::size_t j = 0; j < n; ++j) {
                const std::string& display = files[j].display;
                const bool match =
                    display == inc ||
                    (display.size() > inc.size() + 1 &&
                     display.compare(display.size() - inc.size() - 1,
                                     inc.size() + 1, "/" + inc) == 0);
                if (match) edges[i].push_back(j);
            }
        }
    }

    std::vector<std::vector<std::size_t>> closure(n);
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<bool> seen(n, false);
        std::vector<std::size_t> stack = {i};
        seen[i] = true;
        while (!stack.empty()) {
            const std::size_t at = stack.back();
            stack.pop_back();
            closure[i].push_back(at);
            for (const std::size_t next : edges[at]) {
                if (!seen[next]) {
                    seen[next] = true;
                    stack.push_back(next);
                }
            }
        }
        std::sort(closure[i].begin(), closure[i].end());
    }
    return closure;
}

namespace {

/// Resolution context for one file: the classes and free functions its
/// include closure can see.
struct Visibility {
    std::set<std::string> classes;
    std::set<std::string> free_functions;
};

class Resolver {
  public:
    Resolver(const std::vector<LexedFile>& files, const SymbolTable& symbols,
             CallGraph& graph)
        : files_(files), symbols_(symbols), graph_(graph) {}

    void run() {
        graph_.closure = include_closures(files_);
        graph_.edges.resize(symbols_.functions.size());

        // Group definitions by qualified name, and remember which file
        // declares each class / free function.
        std::map<std::string, std::set<std::size_t>> class_decl_files =
            symbols_.class_files;
        std::map<std::string, std::set<std::size_t>> free_fn_files;
        for (std::size_t i = 0; i < symbols_.functions.size(); ++i) {
            const FunctionDef& fn = symbols_.functions[i];
            graph_.defs[fn.qualified].push_back(i);
            if (fn.class_name.empty()) {
                free_fn_files[fn.name].insert(fn.file);
            } else {
                // An out-of-line definition makes the class name usable
                // from its own translation unit too.
                class_decl_files[fn.class_name].insert(fn.file);
            }
        }

        // Per-file visibility sets.
        visibility_.resize(files_.size());
        for (std::size_t i = 0; i < files_.size(); ++i) {
            const std::set<std::size_t> in_closure(graph_.closure[i].begin(),
                                                   graph_.closure[i].end());
            auto visible = [&](const std::set<std::size_t>& decl_files) {
                for (const std::size_t f : decl_files) {
                    if (in_closure.count(f) > 0) return true;
                }
                return false;
            };
            for (const auto& [name, decl_files] : class_decl_files) {
                if (visible(decl_files)) visibility_[i].classes.insert(name);
            }
            for (const auto& [name, decl_files] : free_fn_files) {
                if (visible(decl_files)) {
                    visibility_[i].free_functions.insert(name);
                }
            }
        }

        for (std::size_t i = 0; i < symbols_.functions.size(); ++i) {
            resolve_function(i);
        }
    }

  private:
    const std::vector<LexedFile>& files_;
    const SymbolTable& symbols_;
    CallGraph& graph_;
    std::vector<Visibility> visibility_;

    bool class_has_method(const std::string& cls,
                          const std::string& name) const {
        const auto it = symbols_.class_methods.find(cls);
        return it != symbols_.class_methods.end() &&
               it->second.count(name) > 0;
    }

    /// The node name exists in the graph iff some definition carries it.
    bool has_def(const std::string& qualified) const {
        return graph_.defs.count(qualified) > 0;
    }

    void add_edge(std::size_t caller, const RawCall& call,
                  const std::string& qualified) {
        if (!has_def(qualified)) return;
        graph_.edges[caller].push_back(
            CallEdge{qualified, call.line, call.token});
    }

    void resolve_function(std::size_t index) {
        const FunctionDef& fn = symbols_.functions[index];
        const Visibility& vis = visibility_[fn.file];
        for (const RawCall& call : fn.calls) {
            if (call.global_ns) continue;  // `::fsync` etc: primitives only

            if (!call.qualifier.empty()) {
                if (vis.classes.count(call.qualifier) > 0 &&
                    class_has_method(call.qualifier, call.name)) {
                    add_edge(index, call, call.qualifier + "::" + call.name);
                }
                continue;  // std::foo, detail::foo: not project symbols
            }

            if (call.via_this) {
                if (!fn.class_name.empty()) {
                    add_edge(index, call, fn.class_name + "::" + call.name);
                }
                continue;
            }

            if (call.is_member_call) {
                // Typed receiver chain: each link is a parameter (first
                // link only) or a declared data member of the previous
                // link's type (`state_->cv.wait` types state_ through
                // the enclosing class, then cv through State). A chain
                // that fully resolves to a KNOWN type that is not a
                // project class (a condition_variable, a std::
                // container) resolves to nothing — falling back to name
                // matching there would wire `sleep_cv_.wait(...)` to
                // every project method named `wait`.
                if (!call.chain.empty()) {
                    std::string cls = fn.class_name;
                    bool typed = true;
                    for (std::size_t k = 0; k < call.chain.size(); ++k) {
                        std::string next;
                        if (k == 0) {
                            const auto pt =
                                fn.param_types.find(call.chain[k]);
                            if (pt != fn.param_types.end()) {
                                next = pt->second;
                            }
                        }
                        if (next.empty() && !cls.empty()) {
                            const auto it = symbols_.member_types.find(
                                {cls, call.chain[k]});
                            if (it != symbols_.member_types.end()) {
                                next = it->second;
                            }
                        }
                        if (next.empty()) {
                            typed = false;
                            break;
                        }
                        cls = next;
                    }
                    if (typed) {
                        if (vis.classes.count(cls) > 0 &&
                            class_has_method(cls, call.name)) {
                            add_edge(index, call, cls + "::" + call.name);
                        }
                        continue;
                    }
                }
                // Unknown receiver (a local, a chained call): virtual-
                // dispatch fallback — every visible class with a method
                // of this name may be the target.
                for (const std::string& cls : vis.classes) {
                    if (class_has_method(cls, call.name)) {
                        add_edge(index, call, cls + "::" + call.name);
                    }
                }
                continue;
            }

            // Unqualified call: own method first, else a free function.
            if (!fn.class_name.empty() &&
                class_has_method(fn.class_name, call.name)) {
                add_edge(index, call, fn.class_name + "::" + call.name);
                continue;
            }
            if (vis.free_functions.count(call.name) > 0) {
                add_edge(index, call, call.name);
            }
        }
    }
};

}  // namespace

CallGraph build_callgraph(const std::vector<LexedFile>& files,
                          const SymbolTable& symbols) {
    CallGraph graph;
    Resolver resolver(files, symbols, graph);
    resolver.run();
    return graph;
}

}  // namespace mielint
