#include "config.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mielint {

namespace {

bool glob_match_at(const std::string& p, std::size_t pi, const std::string& s,
                   std::size_t si) {
    while (pi < p.size()) {
        const char c = p[pi];
        if (c == '*') {
            const bool double_star = pi + 1 < p.size() && p[pi + 1] == '*';
            const std::size_t next = pi + (double_star ? 2 : 1);
            // Try every span the star could absorb (empty first).
            for (std::size_t k = si; k <= s.size(); ++k) {
                if (glob_match_at(p, next, s, k)) return true;
                if (k < s.size() && !double_star && s[k] == '/') break;
            }
            return false;
        }
        if (si >= s.size()) return false;
        if (c == '?') {
            if (s[si] == '/') return false;
        } else if (c != s[si]) {
            return false;
        }
        ++pi;
        ++si;
    }
    return si == s.size();
}

}  // namespace

bool glob_match(const std::string& pattern, const std::string& path) {
    return glob_match_at(pattern, 0, path, 0);
}

Config Config::parse(const std::string& text, const std::string& origin) {
    Config config;
    std::istringstream in(text);
    std::string raw;
    int line_no = 0;
    while (std::getline(in, raw)) {
        ++line_no;
        const std::size_t hash = raw.find('#');
        std::string body = hash == std::string::npos ? raw
                                                     : raw.substr(0, hash);
        std::istringstream fields(body);
        std::string directive;
        if (!(fields >> directive)) continue;  // blank / comment-only

        auto fail = [&](const std::string& why) {
            throw std::runtime_error(origin + ":" +
                                     std::to_string(line_no) + ": " + why);
        };
        if (directive == "allow") {
            std::string rule, glob;
            if (!(fields >> rule >> glob)) {
                fail("expected: allow <rule-id> <path-glob>");
            }
            config.path_allows[rule].push_back(glob);
        } else if (directive == "secret-safe-type") {
            std::string name;
            if (!(fields >> name)) fail("expected: secret-safe-type <name>");
            config.secret_safe_types.insert(name);
        } else if (directive == "public-biguint-member") {
            std::string name;
            if (!(fields >> name)) {
                fail("expected: public-biguint-member <name>");
            }
            config.public_biguint_members.insert(name);
        } else if (directive == "blocking-call") {
            std::string name;
            if (!(fields >> name)) fail("expected: blocking-call <name>");
            config.blocking_calls.insert(name);
        } else {
            fail("unknown directive '" + directive + "'");
        }
        std::string extra;
        if (fields >> extra) fail("trailing tokens after directive");
    }
    return config;
}

Config Config::load(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw std::runtime_error("mielint: cannot open config: " + path);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parse(buffer.str(), path);
}

bool Config::path_allowed(const std::string& rule,
                          const std::string& display_path) const {
    const auto it = path_allows.find(rule);
    if (it == path_allows.end()) return false;
    for (const std::string& glob : it->second) {
        if (glob_match(glob, display_path)) return true;
    }
    return false;
}

}  // namespace mielint
