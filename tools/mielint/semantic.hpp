// Semantic rules R6-R8: whole-project analyses over the symbol table
// and call graph (symbols.hpp / callgraph.hpp).
//
//   R6  no blocking operation reachable from a `// mielint: nonblocking`
//       function: blocking primitives (fsync, ::send/::recv on sockets,
//       sleep_for, epoll_wait, condition-variable waits, joins, plus the
//       config's `blocking-call` additions) and acquisitions of "slow"
//       mutexes — mutexes some function holds around a blocking
//       operation (a WAL append under DurableServer::log_mutex_ makes
//       every log_mutex_ acquisition a potential fsync-length stall).
//       Condition-variable waits do NOT mark their own mutex slow (wait
//       releases it), and std::try_to_lock acquisitions never block.
//   R7  lock-order discipline: per-function mutex acquisition sequences
//       propagate across the call graph into a global lock-order graph;
//       any cycle is a potential deadlock and fails the lint. Mutexes
//       are identified per class (`Node::mutex_`) when resolvable;
//       same-named members of different classes that cannot be told
//       apart merge into one conservative node, and self-edges are
//       dropped (two instances of one class cannot be distinguished
//       lexically — DESIGN.md §16).
//   R8  guarded members: a member annotated `// mielint: guarded_by(mu)`
//       may only be touched inside a scope that holds `mu` — an RAII
//       lock in the same block, or a function annotated
//       `// mielint: acquires(mu)` (callers pass the lock down).
//       Constructors/destructors are exempt (no concurrent access
//       before/after the object's lifetime), as are lambda bodies
//       (which run on arbitrary threads and are analyzed as opaque).
#pragma once

#include <vector>

#include "config.hpp"
#include "lexer.hpp"
#include "rules.hpp"

namespace mielint {

/// Runs R6-R8 over the whole file set and appends findings (unsorted;
/// run_rules() sorts). Honors config path allowlists and inline allows
/// exactly like the lexical rules.
void run_semantic_rules(const std::vector<LexedFile>& files,
                        const Config& config, std::vector<Finding>& out);

}  // namespace mielint
