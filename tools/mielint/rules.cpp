#include "rules.hpp"

#include <algorithm>
#include <cctype>

#include "callgraph.hpp"
#include "semantic.hpp"

namespace mielint {

namespace {

std::string lower(const std::string& s) {
    std::string out = s;
    for (char& c : out) c = static_cast<char>(std::tolower(
                            static_cast<unsigned char>(c)));
    return out;
}

/// Sink for one file's findings; drops anything allowlisted.
class Sink {
public:
    Sink(const LexedFile& file, const Config& config,
         std::vector<Finding>& out)
        : file_(file), config_(config), out_(out) {}

    void report(const std::string& rule, int line, std::string message) {
        if (config_.path_allowed(rule, file_.display)) return;
        if (file_.allowed(rule, line)) return;
        out_.push_back(Finding{rule, file_.display, line,
                               std::move(message)});
    }

private:
    const LexedFile& file_;
    const Config& config_;
    std::vector<Finding>& out_;
};

// ---------------------------------------------------------------- R1 ----

const std::set<std::string>& banned_nondeterminism() {
    static const std::set<std::string> kBanned = {
        "rand",          "srand",
        "random_device", "mt19937",
        "mt19937_64",    "minstd_rand",
        "minstd_rand0",  "default_random_engine",
        "random_shuffle", "system_clock",
    };
    return kBanned;
}

void rule_r1(const LexedFile& file, Sink& sink) {
    const auto& tokens = file.tokens;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const Token& t = tokens[i];
        if (!t.is_identifier) continue;
        if (banned_nondeterminism().count(t.text) > 0) {
            sink.report("R1", t.line,
                        "nondeterministic API '" + t.text +
                            "'; route entropy through crypto/entropy.hpp");
            continue;
        }
        // time(nullptr) / time(NULL) / time(0): wall-clock seeding.
        if (t.text == "time" && i + 2 < tokens.size() &&
            tokens[i + 1].text == "(" &&
            (tokens[i + 2].text == "nullptr" ||
             tokens[i + 2].text == "NULL" || tokens[i + 2].text == "0")) {
            sink.report("R1", t.line,
                        "wall-clock seeding via time(" + tokens[i + 2].text +
                            "); route entropy through crypto/entropy.hpp");
        }
    }
}

// ---------------------------------------------------------------- R2 ----

/// Does an identifier look like it names authenticated/secret bytes?
/// Split on '_' so "kMagic" does not match "mac".
bool names_secret_buffer(const std::string& ident) {
    static const std::set<std::string> kParts = {
        "mac", "tag", "digest", "hmac", "secret", "key"};
    const std::string l = lower(ident);
    std::string part;
    auto check = [&](const std::string& p) { return kParts.count(p) > 0; };
    for (const char c : l) {
        if (c == '_') {
            if (check(part)) return true;
            part.clear();
        } else {
            part.push_back(c);
        }
    }
    return check(part);
}

void rule_r2(const LexedFile& file, Sink& sink) {
    const auto& tokens = file.tokens;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const Token& t = tokens[i];
        if (t.text == "memcmp") {
            // Look at the argument tokens for secret-named buffers.
            std::size_t j = i + 1;
            if (j < tokens.size() && tokens[j].text != "(") continue;
            int depth = 0;
            bool secret = false;
            for (; j < tokens.size(); ++j) {
                if (tokens[j].text == "(") ++depth;
                if (tokens[j].text == ")" && --depth == 0) break;
                if (tokens[j].is_identifier &&
                    names_secret_buffer(tokens[j].text)) {
                    secret = true;
                }
            }
            if (secret) {
                sink.report("R2", t.line,
                            "memcmp on secret-named buffer; use "
                            "util::ct_equal");
            }
        } else if (t.text == "==" || t.text == "!=") {
            // The left operand's tail identifier sits directly before the
            // operator; for the right operand, follow the member-access
            // chain (`key_.input_dims` compares input_dims, not key_).
            const bool lhs = i > 0 && tokens[i - 1].is_identifier &&
                             names_secret_buffer(tokens[i - 1].text);
            std::string rhs_name;
            if (i + 1 < tokens.size() && tokens[i + 1].is_identifier) {
                std::size_t k = i + 1;
                while (k + 2 < tokens.size() &&
                       (tokens[k + 1].text == "." ||
                        tokens[k + 1].text == "->") &&
                       tokens[k + 2].is_identifier) {
                    k += 2;
                }
                rhs_name = tokens[k].text;
            }
            const bool rhs =
                !rhs_name.empty() && names_secret_buffer(rhs_name);
            if (lhs || rhs) {
                const std::string& name = lhs ? tokens[i - 1].text : rhs_name;
                sink.report("R2", t.line,
                            "'" + t.text + "' on secret-named buffer '" +
                                name + "'; use util::ct_equal");
            }
        }
    }
}

// ---------------------------------------------------------------- R3 ----

/// Names declared with an unordered container type in one file.
std::set<std::string> unordered_names_in(const LexedFile& file) {
    std::set<std::string> names;
    const auto& tokens = file.tokens;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        if (tokens[i].text != "unordered_map" &&
            tokens[i].text != "unordered_set") {
            continue;
        }
        // Scan forward through the template argument list; the
        // declared name is the first identifier at or below the
        // starting depth that is followed by a declarator terminator.
        int depth = 0;
        for (std::size_t j = i + 1; j < tokens.size() && j < i + 256; ++j) {
            const std::string& text = tokens[j].text;
            if (text == "<") ++depth;
            else if (text == ">") --depth;
            else if (text == ";" && depth <= 0) break;
            else if (tokens[j].is_identifier && depth <= 0 &&
                     j + 1 < tokens.size()) {
                const std::string& next = tokens[j + 1].text;
                if (next == ";" || next == "=" || next == "{" ||
                    next == "," || next == ")") {
                    names.insert(text);
                    break;
                }
            }
        }
    }
    return names;
}

/// Pass 1 of R3: for every file, the unordered-declared names visible
/// through its transitive quoted-include closure (headers declare,
/// sources iterate; callgraph.hpp owns the closure computation, shared
/// with the semantic rules). Scoping to the closure keeps a name like
/// `objects` that is an unordered_map in one header from tainting an
/// unrelated vector of the same name elsewhere.
std::vector<std::set<std::string>> collect_unordered_names(
    const std::vector<LexedFile>& files) {
    const std::size_t n = files.size();
    std::vector<std::set<std::string>> own(n);
    for (std::size_t i = 0; i < n; ++i) own[i] = unordered_names_in(files[i]);

    const std::vector<std::vector<std::size_t>> closure =
        include_closures(files);
    std::vector<std::set<std::string>> visible(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (const std::size_t at : closure[i]) {
            visible[i].insert(own[at].begin(), own[at].end());
        }
    }
    return visible;
}

void rule_r3(const LexedFile& file, const std::set<std::string>& unordered,
             Sink& sink) {
    const auto& tokens = file.tokens;
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
        if (tokens[i].text != "for" || tokens[i + 1].text != "(") continue;
        // Find the range-for ':' at parenthesis depth 1 (a ';' there means
        // a classic for loop; bail).
        int depth = 0;
        std::size_t colon = 0, close = 0;
        for (std::size_t j = i + 1; j < tokens.size(); ++j) {
            const std::string& text = tokens[j].text;
            if (text == "(" || text == "[" || text == "{") ++depth;
            else if (text == ")" || text == "]" || text == "}") {
                if (--depth == 0) {
                    close = j;
                    break;
                }
            } else if (depth == 1 && text == ";") {
                break;  // classic for
            } else if (depth == 1 && text == ":" && colon == 0) {
                colon = j;
            }
        }
        if (colon == 0 || close <= colon + 1) continue;
        // The iterated expression's final identifier: strip a trailing
        // index ([...]); a trailing call ()) is opaque, skip it.
        std::size_t last = close - 1;
        if (tokens[last].text == "]") {
            int bracket = 0;
            while (last > colon) {
                if (tokens[last].text == "]") ++bracket;
                if (tokens[last].text == "[" && --bracket == 0) break;
                --last;
            }
            --last;
        }
        if (last <= colon || !tokens[last].is_identifier) continue;
        if (unordered.count(tokens[last].text) == 0) continue;
        sink.report(
            "R3", tokens[i].line,
            "iteration over unordered container '" + tokens[last].text +
                "': hash order must not reach serialized output (sort "
                "first, or annotate order-insensitive use with "
                "// mielint: allow(R3): reason)");
    }
}

// ---------------------------------------------------------------- R4 ----

void rule_r4(const LexedFile& file, Sink& sink) {
    if (!file.is_header()) return;
    bool pragma_once = false;
    for (const std::string& raw : file.raw_lines) {
        // Tolerate interior whitespace variations of `#pragma once`.
        std::string squeezed;
        for (const char c : raw) {
            if (c != ' ' && c != '\t') squeezed.push_back(c);
        }
        if (squeezed == "#pragmaonce") {
            pragma_once = true;
            break;
        }
    }
    if (!pragma_once) {
        sink.report("R4", 1, "header missing '#pragma once'");
    }
    const auto& tokens = file.tokens;
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
        if (tokens[i].text == "using" && tokens[i + 1].text == "namespace") {
            sink.report("R4", tokens[i].line,
                        "'using namespace' in a header leaks into every "
                        "includer");
        }
    }
}

// ---------------------------------------------------------------- R5 ----

bool names_key_material(const std::string& ident) {
    static const char* kFragments[] = {"key",    "seed", "secret", "master",
                                       "ipad",   "opad", "rk1",    "rk2",
                                       "priv",   "lambda"};
    const std::string l = lower(ident);
    for (const char* fragment : kFragments) {
        if (l.find(fragment) != std::string::npos) return true;
    }
    return false;
}

bool is_scalar_type(const std::string& name) {
    static const std::set<std::string> kScalars = {
        "bool",     "char",     "short",    "int",      "long",
        "unsigned", "signed",   "float",    "double",   "size_t",
        "int8_t",   "int16_t",  "int32_t",  "int64_t",  "uint8_t",
        "uint16_t", "uint32_t", "uint64_t", "uintptr_t"};
    return kScalars.count(name) > 0;
}

bool is_type_qualifier(const std::string& name) {
    static const std::set<std::string> kQualifiers = {
        "const",    "static",   "constexpr", "mutable", "inline",
        "volatile", "typename", "friend",    "struct",  "class",
        "enum",     "using",    "explicit",  "virtual", "public",
        "private",  "protected"};
    return kQualifiers.count(name) > 0;
}

/// The declared type's head identifier for the member ending at token
/// index `member`: scan back to the previous declaration boundary, then
/// forward past qualifiers and namespace segments.
std::string type_head(const std::vector<Token>& tokens, std::size_t member) {
    std::size_t begin = member;
    while (begin > 0) {
        const std::string& text = tokens[begin - 1].text;
        if (text == ";" || text == "{" || text == "}" || text == ":") break;
        --begin;
    }
    for (std::size_t j = begin; j < member; ++j) {
        if (!tokens[j].is_identifier) continue;
        if (is_type_qualifier(tokens[j].text)) continue;
        if (j + 1 < member && tokens[j + 1].text == "::") continue;
        return tokens[j].text;
    }
    return "";
}

void rule_r5(const LexedFile& file, const Config& config, Sink& sink) {
    struct Scope {
        std::string name;
        int body_depth = 0;
    };
    const auto& tokens = file.tokens;
    std::vector<Scope> aggregates;
    int brace_depth = 0;
    int paren_depth = 0;
    std::string pending;  // aggregate name awaiting its '{'
    bool have_pending = false;

    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const Token& t = tokens[i];
        if (t.text == "struct" || t.text == "class") {
            // `enum class` / `enum struct` bodies hold enumerators, not
            // members.
            if (i > 0 && tokens[i - 1].text == "enum") continue;
            for (std::size_t j = i + 1;
                 j < tokens.size() && j < i + 4; ++j) {
                if (tokens[j].is_identifier) {
                    pending = tokens[j].text;
                    have_pending = true;
                    break;
                }
            }
            continue;
        }
        if (t.text == "(") {
            ++paren_depth;
            have_pending = false;  // template <class T> void f(... / ctor
        } else if (t.text == ")") {
            --paren_depth;
        } else if (t.text == ";" && paren_depth == 0) {
            have_pending = false;  // forward declaration
        } else if (t.text == "{") {
            ++brace_depth;
            if (have_pending && paren_depth == 0) {
                aggregates.push_back(Scope{pending, brace_depth});
                have_pending = false;
            }
        } else if (t.text == "}") {
            if (!aggregates.empty() &&
                aggregates.back().body_depth == brace_depth) {
                aggregates.pop_back();
            }
            --brace_depth;
        }

        // Member declaration directly inside an aggregate body?
        if (aggregates.empty() || paren_depth != 0 || !t.is_identifier) {
            continue;
        }
        const Scope& scope = aggregates.back();
        if (brace_depth != scope.body_depth) continue;
        if (i + 1 >= tokens.size()) continue;
        const std::string& next = tokens[i + 1].text;
        if (next != ";" && next != "=" && next != "{") continue;

        const std::string head = type_head(tokens, i);
        if (head.empty() || head == t.text) continue;

        // R5(b): private-key integers must be SecretBigUint.
        const std::string scope_l = lower(scope.name);
        if (head == "BigUint" &&
            (scope_l.find("private") != std::string::npos ||
             scope_l.find("secret") != std::string::npos) &&
            config.public_biguint_members.count(t.text) == 0) {
            sink.report("R5", t.line,
                        "BigUint member '" + t.text + "' of " + scope.name +
                            " holds private-key material; use SecretBigUint "
                            "(or list it as public-biguint-member)");
            continue;
        }

        // R5(a): secret-named members need zeroizing storage.
        if (!names_key_material(t.text)) continue;
        if (is_scalar_type(head)) continue;  // e.g. public uint64 seeds
        if (config.secret_safe_types.count(head) > 0) continue;
        sink.report("R5", t.line,
                    "member '" + t.text + "' of " + scope.name +
                        " looks like key material but has type '" + head +
                        "'; use crypto::SecretBytes / Zeroizing<...> "
                        "(secret-safe-type set)");
    }
}

}  // namespace

const std::vector<RuleInfo>& rule_catalog() {
    static const std::vector<RuleInfo> kCatalog = {
        {"R1", "banned nondeterminism APIs"},
        {"R2", "non-constant-time comparison of secrets"},
        {"R3", "unordered-container iteration order escaping"},
        {"R4", "header hygiene (#pragma once, no using namespace)"},
        {"R5", "key material outside zeroizing storage"},
        {"R6", "blocking operation reachable from a nonblocking function"},
        {"R7", "lock-order cycle across the call graph"},
        {"R8", "guarded member accessed without its lock"},
    };
    return kCatalog;
}

std::vector<Finding> run_rules(const std::vector<LexedFile>& files,
                               const Config& config) {
    std::vector<Finding> findings;
    const std::vector<std::set<std::string>> unordered =
        collect_unordered_names(files);
    for (std::size_t i = 0; i < files.size(); ++i) {
        const LexedFile& file = files[i];
        Sink sink(file, config, findings);
        rule_r1(file, sink);
        rule_r2(file, sink);
        rule_r3(file, unordered[i], sink);
        rule_r4(file, sink);
        rule_r5(file, config, sink);
    }
    run_semantic_rules(files, config, findings);
    std::sort(findings.begin(), findings.end(),
              [](const Finding& a, const Finding& b) {
                  if (a.file != b.file) return a.file < b.file;
                  if (a.line != b.line) return a.line < b.line;
                  return a.rule < b.rule;
              });
    return findings;
}

}  // namespace mielint
