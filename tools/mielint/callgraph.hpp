// Include-closure call graph for mielint's semantic rules.
//
// Raw call sites recorded by the symbol table are resolved here against
// the project's own symbols, scoped by each file's transitive
// quoted-include closure: a call in file F only resolves to classes and
// free functions *declared* somewhere F can see, while the definitions
// those declarations stand for may live in any scanned file (the usual
// header/impl split). Resolution, in order:
//
//   X::name(...)   -> methods of class X (if X is visible), else a free
//                     function named `name`
//   this->name(..) -> the enclosing class's method
//   obj.name(...)  -> the declared type of member `obj` when the
//                     enclosing class declares it; otherwise a
//                     virtual-dispatch fallback to EVERY visible class
//                     with a method of that name (sound for the rules,
//                     over-approximate by design)
//   name(...)      -> the enclosing class's own method, else a visible
//                     free function
//
// Calls that resolve to nothing (std::, libc, casts, constructors) are
// dropped; the blocking-primitive scan in semantic.cpp looks at raw
// names separately, so `::fsync(...)` is never lost by being
// unresolvable.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "lexer.hpp"
#include "symbols.hpp"

namespace mielint {

/// Transitive quoted-include closure: closure[i] holds every file index
/// reachable from file i through `#include "..."` lines (including i
/// itself). Includes are matched by path suffix; ambiguous suffixes link
/// every candidate (conservative over-approximation). Shared by R3 and
/// the call graph.
std::vector<std::vector<std::size_t>> include_closures(
    const std::vector<LexedFile>& files);

struct CallEdge {
    std::string callee;  ///< qualified name ("Class::method" or "fn")
    int line = 0;
    std::size_t token = 0;  ///< token index in the caller's file
};

struct CallGraph {
    /// qualified name -> indexes into SymbolTable::functions (overloads
    /// and declaration/definition splits merge into one node).
    std::map<std::string, std::vector<std::size_t>> defs;
    /// Parallel to SymbolTable::functions: resolved outgoing edges.
    std::vector<std::vector<CallEdge>> edges;
    /// Parallel to the file vector (from include_closures).
    std::vector<std::vector<std::size_t>> closure;
};

CallGraph build_callgraph(const std::vector<LexedFile>& files,
                          const SymbolTable& symbols);

}  // namespace mielint
