#include "lexer.hpp"

#include <cctype>

namespace mielint {

namespace {

bool ident_start(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Parses the `mielint:` markers out of a comment body: either a
/// suppression "mielint: allow(R1, R2): reason" (recorded against
/// `line`) or one of the semantic annotations
/// nonblocking / acquires(mu) / guarded_by(mu).
void parse_markers(const std::string& comment, int line, LexedFile& out) {
    const std::size_t marker = comment.find("mielint:");
    if (marker == std::string::npos) return;

    const std::size_t open = comment.find("allow(", marker);
    if (open != std::string::npos) {
        const std::size_t close = comment.find(')', open);
        if (close == std::string::npos) return;
        std::string id;
        auto flush = [&] {
            if (!id.empty()) out.inline_allows[line].insert(id);
            id.clear();
        };
        for (std::size_t i = open + 6; i < close; ++i) {
            const char c = comment[i];
            if (c == ',' || c == ' ' || c == '\t') {
                flush();
            } else {
                id.push_back(c);
            }
        }
        flush();
        return;
    }

    auto word_at = [&](std::size_t pos, const std::string& word) {
        if (comment.compare(pos, word.size(), word) != 0) return false;
        const std::size_t end = pos + word.size();
        return end >= comment.size() || !ident_char(comment[end]);
    };
    std::size_t pos = marker + 8;
    while (pos < comment.size() &&
           (comment[pos] == ' ' || comment[pos] == '\t')) {
        ++pos;
    }
    if (word_at(pos, "nonblocking")) {
        out.annotations[line].push_back(Annotation{"nonblocking", ""});
        return;
    }
    for (const char* kind : {"acquires", "guarded_by"}) {
        const std::string prefix = std::string(kind) + "(";
        if (comment.compare(pos, prefix.size(), prefix) != 0) continue;
        const std::size_t close = comment.find(')', pos);
        if (close == std::string::npos) return;
        std::string arg =
            comment.substr(pos + prefix.size(), close - pos - prefix.size());
        while (!arg.empty() && (arg.front() == ' ' || arg.front() == '\t')) {
            arg.erase(arg.begin());
        }
        while (!arg.empty() && (arg.back() == ' ' || arg.back() == '\t')) {
            arg.pop_back();
        }
        if (!arg.empty()) {
            out.annotations[line].push_back(Annotation{kind, arg});
        }
        return;
    }
}

const char* kMultiCharOps[] = {"::", "->", "==", "!=", "&&", "||",
                               "++", "--"};

}  // namespace

bool LexedFile::allowed(const std::string& rule, int line) const {
    for (const int l : {line, line - 1}) {
        const auto it = inline_allows.find(l);
        if (it != inline_allows.end() && it->second.count(rule) > 0) {
            return true;
        }
    }
    return false;
}

LexedFile lex(std::string path, std::string display,
              const std::string& contents) {
    LexedFile out;
    out.path = std::move(path);
    out.display = std::move(display);

    // Split raw lines first (R4 inspects the untokenized text).
    std::string current;
    for (const char c : contents) {
        if (c == '\n') {
            out.raw_lines.push_back(current);
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    if (!current.empty()) out.raw_lines.push_back(current);

    const std::size_t n = contents.size();
    std::size_t i = 0;
    int line = 1;
    bool at_line_start = true;  // only whitespace seen since the newline

    auto push = [&](std::string text, bool is_ident) {
        out.tokens.push_back(Token{std::move(text), line, is_ident});
    };

    while (i < n) {
        const char c = contents[i];
        if (c == '\n') {
            ++line;
            at_line_start = true;
            ++i;
            continue;
        }
        if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
            ++i;
            continue;
        }

        // Preprocessor directive: drop the whole (possibly continued)
        // logical line from the token stream.
        if (c == '#' && at_line_start) {
            while (i < n) {
                if (contents[i] == '\\' && i + 1 < n &&
                    contents[i + 1] == '\n') {
                    i += 2;
                    ++line;
                    continue;
                }
                if (contents[i] == '\n') break;
                ++i;
            }
            continue;
        }
        at_line_start = false;

        // Line comment (may carry an inline suppression).
        if (c == '/' && i + 1 < n && contents[i + 1] == '/') {
            const std::size_t start = i;
            while (i < n && contents[i] != '\n') ++i;
            parse_markers(contents.substr(start, i - start), line, out);
            continue;
        }
        // Block comment.
        if (c == '/' && i + 1 < n && contents[i + 1] == '*') {
            i += 2;
            while (i + 1 < n &&
                   !(contents[i] == '*' && contents[i + 1] == '/')) {
                if (contents[i] == '\n') ++line;
                ++i;
            }
            i = (i + 1 < n) ? i + 2 : n;
            continue;
        }

        // String literal (skipped; a raw-string prefix is handled where
        // the identifier before the quote is lexed, below).
        if (c == '"') {
            ++i;
            while (i < n && contents[i] != '"') {
                if (contents[i] == '\\' && i + 1 < n) ++i;
                if (contents[i] == '\n') ++line;  // tolerate, keep counting
                ++i;
            }
            ++i;  // closing quote
            continue;
        }
        // Character literal.
        if (c == '\'') {
            ++i;
            while (i < n && contents[i] != '\'') {
                if (contents[i] == '\\' && i + 1 < n) ++i;
                ++i;
            }
            ++i;
            continue;
        }

        // Number (including hex, digit separators, exponents).
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(contents[i + 1])))) {
            const std::size_t start = i;
            ++i;
            while (i < n) {
                const char d = contents[i];
                if (ident_char(d) || d == '.' || d == '\'') {
                    ++i;
                } else if ((d == '+' || d == '-') &&
                           (contents[i - 1] == 'e' || contents[i - 1] == 'E' ||
                            contents[i - 1] == 'p' ||
                            contents[i - 1] == 'P')) {
                    ++i;
                } else {
                    break;
                }
            }
            push(contents.substr(start, i - start), /*is_ident=*/false);
            continue;
        }

        // Identifier or keyword (with raw-string-prefix special case).
        if (ident_start(c)) {
            const std::size_t start = i;
            while (i < n && ident_char(contents[i])) ++i;
            const std::string word = contents.substr(start, i - start);
            if (i < n && contents[i] == '"' &&
                (word == "R" || word == "u8R" || word == "uR" ||
                 word == "UR" || word == "LR")) {
                // Raw string literal: R"delim( ... )delim"
                ++i;  // opening quote
                std::string delim;
                while (i < n && contents[i] != '(') delim.push_back(contents[i++]);
                ++i;  // '('
                const std::string closer = ")" + delim + "\"";
                const std::size_t end = contents.find(closer, i);
                for (std::size_t j = i;
                     j < (end == std::string::npos ? n : end); ++j) {
                    if (contents[j] == '\n') ++line;
                }
                i = (end == std::string::npos) ? n : end + closer.size();
                continue;
            }
            push(word, /*is_ident=*/true);
            continue;
        }

        // Punctuation: fold the few two-character operators rules rely on;
        // everything else (notably '<' and '>') stays single-character.
        bool matched = false;
        for (const char* op : kMultiCharOps) {
            if (c == op[0] && i + 1 < n && contents[i + 1] == op[1]) {
                push(op, /*is_ident=*/false);
                i += 2;
                matched = true;
                break;
            }
        }
        if (!matched) {
            push(std::string(1, c), /*is_ident=*/false);
            ++i;
        }
    }
    return out;
}

}  // namespace mielint
